//! Base-relation generators (§5.2, Tables 1 and 2).
//!
//! Binary relations are characterized by their directed-graph
//! representation: domain elements are nodes, tuples are edges. The paper
//! uses four families: lists, full binary trees, directed acyclic graphs,
//! and directed cyclic graphs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An edge list: the tuples of one binary relation.
pub type Edges = Vec<(String, String)>;

/// Convert an edge list into engine rows — the one place the
/// string-to-[`rdbms::Value`] conversion lives.
pub fn edges_to_rows(edges: &[(String, String)]) -> Vec<Vec<rdbms::Value>> {
    edges
        .iter()
        .map(|(a, b)| {
            vec![
                rdbms::Value::from(a.as_str()),
                rdbms::Value::from(b.as_str()),
            ]
        })
        .collect()
}

/// Engine rows for the chain `a0 -> a1 -> ... -> a{n-1}` — the fixture the
/// compilation/update tests and examples share.
pub fn chain_facts(n: usize) -> Vec<Vec<rdbms::Value>> {
    (0..n.saturating_sub(1))
        .map(|i| {
            vec![
                rdbms::Value::from(format!("a{i}")),
                rdbms::Value::from(format!("a{}", i + 1)),
            ]
        })
        .collect()
}

/// `n` disjoint lists of `len` nodes each: `n * (len - 1)` tuples.
/// Node `j` of list `i` is named `L{i}_{j}`.
pub fn lists(n: usize, len: usize) -> Edges {
    let mut edges = Vec::with_capacity(n * len.saturating_sub(1));
    for i in 0..n {
        for j in 0..len.saturating_sub(1) {
            edges.push((format!("L{i}_{j}"), format!("L{i}_{}", j + 1)));
        }
    }
    edges
}

/// `n` disjoint lists with lengths uniform in `[avg_len/2, 3*avg_len/2]`
/// (Table 1 parameterizes lists by *average* length). Deterministic under
/// `seed`; total tuples ≈ `n * (avg_len - 1)`.
pub fn lists_varied(n: usize, avg_len: usize, seed: u64) -> Edges {
    assert!(avg_len >= 2, "lists need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = (avg_len / 2).max(2);
    let hi = avg_len + avg_len / 2;
    let mut edges = Vec::new();
    for i in 0..n {
        let len = rng.random_range(lo..=hi);
        for j in 0..len - 1 {
            edges.push((format!("L{i}_{j}"), format!("L{i}_{}", j + 1)));
        }
    }
    edges
}

/// A full binary tree of `depth` levels (root at level 1): `2^depth - 1`
/// nodes, `2^depth - 2` edges. Nodes are named by heap index (`n1` is the
/// root; `n{2i}` and `n{2i+1}` are the children of `n{i}`), so callers can
/// address any subtree root directly.
pub fn full_binary_tree(depth: u32) -> Edges {
    assert!((1..28).contains(&depth), "depth out of range");
    let nodes = (1u64 << depth) - 1;
    let mut edges = Vec::with_capacity((nodes - 1) as usize);
    for i in 1..=(nodes / 2) {
        edges.push((format!("n{i}"), format!("n{}", 2 * i)));
        edges.push((format!("n{i}"), format!("n{}", 2 * i + 1)));
    }
    edges
}

/// Name of the leftmost node at `level` (1-based; level 1 is the root) of
/// a [`full_binary_tree`].
pub fn tree_node_at_level(level: u32) -> String {
    format!("n{}", 1u64 << (level - 1))
}

/// Number of nodes in the subtree rooted at a node on `level` of a tree of
/// `depth` levels.
pub fn subtree_size(depth: u32, level: u32) -> u64 {
    assert!(level >= 1 && level <= depth);
    (1u64 << (depth - level + 1)) - 1
}

/// Number of edges inside that subtree (= descendants of the root).
pub fn subtree_edges(depth: u32, level: u32) -> u64 {
    subtree_size(depth, level) - 1
}

/// A forest of `n` full binary trees of `depth` levels. Tree `t`'s nodes
/// are prefixed `t{t}_`.
pub fn forest(n: usize, depth: u32) -> Edges {
    let mut edges = Vec::new();
    for t in 0..n {
        for (a, b) in full_binary_tree(depth) {
            edges.push((format!("t{t}_{a}"), format!("t{t}_{b}")));
        }
    }
    edges
}

/// A layered DAG: `layers` layers of `width` nodes; each node has `fan_out`
/// edges to distinct random nodes of the next layer. Tuples:
/// `(layers - 1) * width * fan_out`; average fan-in equals `fan_out`; the
/// path length (paper's sense) is `layers`. Deterministic under `seed`.
pub fn layered_dag(layers: usize, width: usize, fan_out: usize, seed: u64) -> Edges {
    assert!(fan_out <= width, "fan_out cannot exceed layer width");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(layers.saturating_sub(1) * width * fan_out);
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            let mut targets: Vec<usize> = (0..width).collect();
            targets.shuffle(&mut rng);
            for &t in targets.iter().take(fan_out) {
                edges.push((format!("d{layer}_{i}"), format!("d{}_{t}", layer + 1)));
            }
        }
    }
    edges
}

/// A directed cyclic graph: `n_cycles` disjoint cycles of `cycle_len`
/// nodes, plus `extra_edges` random edges between arbitrary nodes.
/// Deterministic under `seed`.
pub fn cyclic_digraph(n_cycles: usize, cycle_len: usize, extra_edges: usize, seed: u64) -> Edges {
    assert!(cycle_len >= 2, "a cycle needs at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n_cycles * cycle_len + extra_edges);
    let node = |c: usize, i: usize| format!("c{c}_{i}");
    for c in 0..n_cycles {
        for i in 0..cycle_len {
            edges.push((node(c, i), node(c, (i + 1) % cycle_len)));
        }
    }
    for _ in 0..extra_edges {
        let a = (
            rng.random_range(0..n_cycles),
            rng.random_range(0..cycle_len),
        );
        let b = (
            rng.random_range(0..n_cycles),
            rng.random_range(0..cycle_len),
        );
        edges.push((node(a.0, a.1), node(b.0, b.1)));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn lists_tuple_count_matches_formula() {
        // n lists of average length l: approximately n(l - 1) tuples.
        let edges = lists(5, 10);
        assert_eq!(edges.len(), 5 * 9);
        // Each list is a simple chain: every node has at most one successor.
        let sources: BTreeSet<&String> = edges.iter().map(|(a, _)| a).collect();
        assert_eq!(sources.len(), edges.len());
    }

    #[test]
    fn conversions_produce_engine_rows() {
        let edges = vec![("x".to_string(), "y".to_string())];
        assert_eq!(
            edges_to_rows(&edges),
            vec![vec![rdbms::Value::from("x"), rdbms::Value::from("y")]]
        );
        let chain = chain_facts(3);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[1][1], rdbms::Value::from("a2"));
        assert!(chain_facts(0).is_empty());
    }

    #[test]
    fn varied_lists_average_out() {
        let edges = lists_varied(40, 10, 9);
        // Total ≈ n(avg - 1) = 360, within the ±50% band per list.
        assert!(
            edges.len() >= 40 * 4 && edges.len() <= 40 * 14,
            "{}",
            edges.len()
        );
        assert_eq!(lists_varied(40, 10, 9), edges, "deterministic");
        // Each list is still a simple chain.
        let sources: BTreeSet<&String> = edges.iter().map(|(a, _)| a).collect();
        assert_eq!(sources.len(), edges.len());
    }

    #[test]
    fn tree_tuple_count_matches_formula() {
        for depth in 1..=10 {
            let edges = full_binary_tree(depth);
            assert_eq!(edges.len() as u64, (1u64 << depth) - 2);
        }
    }

    #[test]
    fn tree_structure_is_correct() {
        let edges = full_binary_tree(3);
        assert!(edges.contains(&("n1".into(), "n2".into())));
        assert!(edges.contains(&("n1".into(), "n3".into())));
        assert!(edges.contains(&("n3".into(), "n7".into())));
        // Every non-root node has exactly one parent.
        let mut targets: Vec<&String> = edges.iter().map(|(_, b)| b).collect();
        let before = targets.len();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), before);
    }

    #[test]
    fn subtree_arithmetic() {
        // Depth-4 tree: root subtree = whole tree.
        assert_eq!(subtree_size(4, 1), 15);
        assert_eq!(subtree_edges(4, 1), 14);
        // A leaf's subtree is itself.
        assert_eq!(subtree_size(4, 4), 1);
        assert_eq!(subtree_edges(4, 4), 0);
        assert_eq!(tree_node_at_level(1), "n1");
        assert_eq!(tree_node_at_level(3), "n4");
    }

    #[test]
    fn forest_prefixes_trees_disjointly() {
        let edges = forest(3, 3);
        assert_eq!(edges.len(), 3 * 6);
        assert!(edges.iter().any(|(a, _)| a == "t0_n1"));
        assert!(edges.iter().any(|(a, _)| a == "t2_n1"));
    }

    #[test]
    fn layered_dag_counts_and_determinism() {
        let e1 = layered_dag(4, 6, 2, 42);
        let e2 = layered_dag(4, 6, 2, 42);
        assert_eq!(e1, e2, "seeded generation is deterministic");
        assert_eq!(e1.len(), 3 * 6 * 2);
        // Edges only go layer k -> k+1: acyclic by construction.
        for (a, b) in &e1 {
            let la: usize = a[1..a.find('_').unwrap()].parse().unwrap();
            let lb: usize = b[1..b.find('_').unwrap()].parse().unwrap();
            assert_eq!(lb, la + 1);
        }
        // Fan-out targets are distinct per source.
        let mut seen = BTreeSet::new();
        for e in &e1 {
            assert!(seen.insert(e.clone()), "duplicate edge {e:?}");
        }
    }

    #[test]
    fn cyclic_digraph_contains_cycles() {
        let edges = cyclic_digraph(2, 4, 3, 7);
        assert_eq!(edges.len(), 2 * 4 + 3);
        // The base cycles are present.
        assert!(edges.contains(&("c0_0".into(), "c0_1".into())));
        assert!(edges.contains(&("c0_3".into(), "c0_0".into())));
        assert!(edges.contains(&("c1_3".into(), "c1_0".into())));
    }

    #[test]
    #[should_panic(expected = "fan_out")]
    fn dag_fan_out_validated() {
        layered_dag(3, 2, 5, 0);
    }
}
