//! # dkbms-workload — synthetic workloads for the D/KBMS testbed
//!
//! Generators for the experiment inputs of §5: base relations shaped as
//! lists, full binary trees, layered DAGs and cyclic digraphs ([`graphs`]),
//! and parameterized rule bases for the compilation/update sweeps plus the
//! standard recursive programs ([`rules`]).

pub mod graphs;
pub mod rules;
pub mod scale;

pub use graphs::{
    chain_facts, cyclic_digraph, edges_to_rows, forest, full_binary_tree, layered_dag, lists, Edges,
};
pub use rules::{ancestor_program, chain_rule_base, same_generation};
pub use scale::{
    int_edges_to_rows, scaled_chains, scaled_cyclic, scaled_dag, scaled_forest, scaled_power_law,
    IntEdges,
};
