//! Scaled workload generators: integer-keyed graphs at 10^5–10^7 edges.
//!
//! The §5 generators in [`crate::graphs`] name nodes with strings, which is
//! faithful to the paper but wasteful at the scales the memory-bounded
//! executor is exercised at. Here nodes are `i64` keys and every family is
//! built from *disjoint bounded-diameter blocks*, so the transitive closure
//! grows linearly with the edge count instead of quadratically — a
//! 10^7-edge input stays evaluable while still forcing joins and sorts far
//! past any realistic memory budget.
//!
//! All generators are deterministic: the same `(edges, seed)` pair yields
//! the same edge list on every platform, so benchmark artifacts can be
//! reproduced from the recorded seed alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An integer edge list: the tuples of one binary relation over int keys.
pub type IntEdges = Vec<(i64, i64)>;

/// Convert an integer edge list into engine rows (`int, int` columns).
pub fn int_edges_to_rows(edges: &[(i64, i64)]) -> Vec<Vec<rdbms::Value>> {
    edges
        .iter()
        .map(|&(a, b)| vec![rdbms::Value::Int(a), rdbms::Value::Int(b)])
        .collect()
}

/// Chain length used by the bounded-diameter families. Each block is a
/// path of this many edges, so the closure of `E` edges has at most
/// `E * (CHAIN_EDGES + 1) / 2` tuples — about 3× the input, independent of
/// scale.
pub const CHAIN_EDGES: usize = 5;

/// A forest of disjoint chains totalling (exactly) `edges` edges, each
/// chain [`CHAIN_EDGES`] long except possibly the last. Node ids are
/// consecutive from 0; node `i` links to `i + 1` unless it ends a chain.
pub fn scaled_chains(edges: usize) -> IntEdges {
    let mut out = Vec::with_capacity(edges);
    let mut node = 0i64;
    while out.len() < edges {
        let take = CHAIN_EDGES.min(edges - out.len());
        for _ in 0..take {
            out.push((node, node + 1));
            node += 1;
        }
        node += 1; // skip one id: next chain starts on a fresh node
    }
    out
}

/// A forest of full binary trees of `depth` levels totalling at least
/// `edges` edges (rounded up to whole trees). Heap-indexed within each
/// tree; tree `t` occupies ids `[t * 2^depth, (t+1) * 2^depth)`.
pub fn scaled_forest(edges: usize, depth: u32) -> IntEdges {
    assert!((2..28).contains(&depth), "depth out of range");
    let per_tree = (1usize << depth) - 2;
    let trees = edges.div_ceil(per_tree);
    let span = 1i64 << depth;
    let mut out = Vec::with_capacity(trees * per_tree);
    for t in 0..trees as i64 {
        let base = t * span;
        for i in 1..=((span as u64 / 2) - 1) as i64 {
            out.push((base + i, base + 2 * i));
            out.push((base + i, base + 2 * i + 1));
        }
    }
    out
}

/// A forest of disjoint layered DAG blocks totalling at least `edges`
/// edges. Each block has `layers` layers of `width` nodes; every node
/// sends 2 edges to distinct random nodes of the next layer. Paths are at
/// most `layers - 1` long, so the closure stays bounded. Deterministic
/// under `seed`.
pub fn scaled_dag(edges: usize, layers: usize, width: usize, seed: u64) -> IntEdges {
    assert!(layers >= 2 && width >= 2, "block too small");
    let fan_out = 2usize;
    let per_block = (layers - 1) * width * fan_out;
    let blocks = edges.div_ceil(per_block);
    let block_span = (layers * width) as i64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(blocks * per_block);
    for b in 0..blocks as i64 {
        let base = b * block_span;
        for layer in 0..layers - 1 {
            for i in 0..width {
                let src = base + (layer * width + i) as i64;
                let t1 = rng.random_range(0..width);
                let mut t2 = rng.random_range(0..width - 1);
                if t2 >= t1 {
                    t2 += 1; // distinct second target
                }
                let next = base + ((layer + 1) * width) as i64;
                out.push((src, next + t1 as i64));
                out.push((src, next + t2 as i64));
            }
        }
    }
    out
}

/// Disjoint directed cycles of `cycle_len` nodes plus ~10% chord edges
/// inside each cycle, totalling at least `edges` edges. Cycles keep the
/// closure bounded (each block's closure is `cycle_len^2` tuples) while
/// still exercising cycle-safe fixpoint termination. Deterministic under
/// `seed`.
pub fn scaled_cyclic(edges: usize, cycle_len: usize, seed: u64) -> IntEdges {
    assert!(cycle_len >= 2, "a cycle needs at least two nodes");
    let chords = cycle_len / 10;
    let per_block = cycle_len + chords;
    let blocks = edges.div_ceil(per_block);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(blocks * per_block);
    for b in 0..blocks as i64 {
        let base = b * cycle_len as i64;
        for i in 0..cycle_len as i64 {
            out.push((base + i, base + (i + 1) % cycle_len as i64));
        }
        for _ in 0..chords {
            let a = rng.random_range(0..cycle_len) as i64;
            let c = rng.random_range(0..cycle_len) as i64;
            out.push((base + a, base + c));
        }
    }
    out
}

/// A skewed power-law graph: `edges` edges over `nodes` nodes where both
/// endpoints are drawn log-uniformly — node `x` is picked with probability
/// ∝ 1/x, the classic Zipf tail. A handful of hub nodes collect a large
/// share of the edges, which is the worst case for hash-join build-side
/// skew (one partition much larger than the rest). Not closure-bounded;
/// use for join/sort benchmarks, not transitive closure. Deterministic
/// under `seed`.
pub fn scaled_power_law(edges: usize, nodes: u64, seed: u64) -> IntEdges {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let ln_n = (nodes as f64).ln();
    let draw = |rng: &mut StdRng| -> i64 {
        // Inverse-CDF sample of a 1/x density on [1, nodes]:
        // x = e^(u * ln N) is log-uniform.
        let u = rng.random_range(0..1u64 << 53) as f64 / (1u64 << 53) as f64;
        ((u * ln_n).exp() as u64).min(nodes - 1) as i64
    };
    (0..edges)
        .map(|_| {
            let a = draw(&mut rng);
            let b = draw(&mut rng);
            (a, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn chains_exact_count_and_bounded_paths() {
        let e = scaled_chains(23);
        assert_eq!(e.len(), 23);
        // No node is both a chain end and a chain start: successors unique,
        // and following successors from any node terminates in <= 5 hops.
        let next: HashMap<i64, i64> = e.iter().cloned().collect();
        assert_eq!(next.len(), e.len(), "one successor per source");
        for &(mut n, _) in &e {
            let mut hops = 0;
            while let Some(&m) = next.get(&n) {
                n = m;
                hops += 1;
                assert!(hops <= CHAIN_EDGES, "path longer than a chain");
            }
        }
        assert_eq!(scaled_chains(23), e, "deterministic");
    }

    #[test]
    fn forest_rounds_up_to_whole_trees() {
        let e = scaled_forest(100, 4);
        let per_tree = (1 << 4) - 2;
        assert_eq!(e.len(), 100usize.div_ceil(per_tree) * per_tree);
        // Trees are disjoint: every non-root has exactly one parent.
        let mut parents = HashMap::new();
        for &(a, b) in &e {
            assert!(parents.insert(b, a).is_none(), "node {b} has two parents");
        }
    }

    #[test]
    fn dag_deterministic_and_layered() {
        let e1 = scaled_dag(500, 4, 8, 11);
        assert_eq!(e1, scaled_dag(500, 4, 8, 11));
        assert!(e1.len() >= 500);
        // Within a block, edges go layer k -> k+1 only.
        let block_span = 4 * 8;
        for &(a, b) in &e1 {
            let (la, lb) = (a % block_span as i64 / 8, b % block_span as i64 / 8);
            assert_eq!(lb, la + 1, "edge {a}->{b} skips a layer");
            assert_eq!(
                a / block_span as i64,
                b / block_span as i64,
                "crosses blocks"
            );
        }
    }

    #[test]
    fn cyclic_blocks_contain_their_cycles() {
        let e = scaled_cyclic(100, 10, 3);
        assert!(e.len() >= 100);
        assert!(e.contains(&(0, 1)));
        assert!(e.contains(&(9, 0)), "cycle closes");
        assert_eq!(e, scaled_cyclic(100, 10, 3), "deterministic");
    }

    #[test]
    fn power_law_is_skewed_toward_low_ids() {
        let e = scaled_power_law(10_000, 1_000_000, 5);
        assert_eq!(e.len(), 10_000);
        assert_eq!(e, scaled_power_law(10_000, 1_000_000, 5), "deterministic");
        // The log-uniform draw puts about half the mass below sqrt(N).
        let below = e.iter().filter(|&&(a, _)| a < 1_000).count();
        assert!(
            (3_000..7_000).contains(&below),
            "expected heavy low-id skew, got {below}/10000 below 1000"
        );
    }

    #[test]
    fn int_rows_convert() {
        assert_eq!(
            int_edges_to_rows(&[(1, 2)]),
            vec![vec![rdbms::Value::Int(1), rdbms::Value::Int(2)]]
        );
    }
}
