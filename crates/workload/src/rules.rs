//! Synthetic rule-base generators for the compilation and update
//! experiments (Tests 1-3, 8-9), plus the standard recursive programs the
//! execution experiments use.

use hornlog::parser::parse_program;
use hornlog::Program;

/// The classic ancestor program over a base relation named `base`.
pub fn ancestor_program(base: &str) -> String {
    format!(
        "anc(X, Y) :- {base}(X, Y).\n\
         anc(X, Y) :- {base}(X, Z), anc(Z, Y).\n"
    )
}

/// The right-linear variant of ancestor (descendant-extending).
pub fn ancestor_right_linear(base: &str) -> String {
    format!(
        "anc(X, Y) :- {base}(X, Y).\n\
         anc(X, Y) :- anc(X, Z), {base}(Z, Y).\n"
    )
}

/// The non-linear (doubly recursive) ancestor program.
pub fn ancestor_nonlinear(base: &str) -> String {
    format!(
        "anc(X, Y) :- {base}(X, Y).\n\
         anc(X, Y) :- anc(X, Z), anc(Z, Y).\n"
    )
}

/// The same-generation program over `up`/`flat`/`down` base relations.
pub fn same_generation() -> &'static str {
    "sg(X, Y) :- flat(X, Y).\n\
     sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n"
}

/// A rule base made of disjoint chains. Chain `c` has predicates
/// `g{c}_p0 .. g{c}_p{chain_len-1}`; each predicate is defined by one rule
/// referring to the next, and the last refers to the base predicate:
///
/// ```text
/// g0_p0(X, Y) :- g0_p1(X, Y).
/// ...
/// g0_p{L-1}(X, Y) :- base(X, Y).
/// ```
///
/// Querying `g{c}_p{k}` makes exactly `chain_len - k` rules relevant, so
/// sweeps over the total rule count `R_s` (number of chains × length) and
/// over the relevant count `R_rs` are independent — the knobs of Tests 1-3.
pub fn chain_rule_base(chains: usize, chain_len: usize, base: &str) -> Program {
    let mut src = String::new();
    for c in 0..chains {
        for i in 0..chain_len {
            if i + 1 < chain_len {
                src.push_str(&format!("g{c}_p{i}(X, Y) :- g{c}_p{}(X, Y).\n", i + 1));
            } else {
                src.push_str(&format!("g{c}_p{i}(X, Y) :- {base}(X, Y).\n"));
            }
        }
    }
    parse_program(&src).expect("generated rule base parses")
}

/// The predicate name at position `k` of chain `c` in a
/// [`chain_rule_base`].
pub fn chain_pred(c: usize, k: usize) -> String {
    format!("g{c}_p{k}")
}

/// A query against `chain_pred(c, k)` with the given constant bound in the
/// first argument.
pub fn chain_query(c: usize, k: usize, constant: &str) -> String {
    format!("?- {}({constant}, W).", chain_pred(c, k))
}

/// A rule base where one predicate fans out over `width` branches of
/// `depth` rules each — querying the root makes `width * depth + 1` rules
/// relevant. Used to grow `R_rs` quickly at a fixed chain shape.
pub fn fanout_rule_base(width: usize, depth: usize, base: &str) -> Program {
    let mut src = String::new();
    for w in 0..width {
        src.push_str(&format!("root(X, Y) :- f{w}_p0(X, Y).\n"));
        for i in 0..depth {
            if i + 1 < depth {
                src.push_str(&format!("f{w}_p{i}(X, Y) :- f{w}_p{}(X, Y).\n", i + 1));
            } else {
                src.push_str(&format!("f{w}_p{i}(X, Y) :- {base}(X, Y).\n"));
            }
        }
    }
    parse_program(&src).expect("generated rule base parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornlog::pcg::Pcg;

    #[test]
    fn standard_programs_parse() {
        assert_eq!(parse_program(&ancestor_program("parent")).unwrap().len(), 2);
        assert_eq!(
            parse_program(&ancestor_right_linear("parent"))
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            parse_program(&ancestor_nonlinear("parent")).unwrap().len(),
            2
        );
        assert_eq!(parse_program(same_generation()).unwrap().len(), 2);
    }

    #[test]
    fn chain_rule_base_counts() {
        let p = chain_rule_base(4, 5, "base");
        assert_eq!(p.len(), 20);
        assert_eq!(p.derived_predicates().len(), 20, "one predicate per rule");
    }

    #[test]
    fn chain_relevance_is_suffix_length() {
        let p = chain_rule_base(3, 10, "base");
        let pcg = Pcg::build(&p);
        // From g0_p4: reaches g0_p5..g0_p9 and base = 5 predicates + base.
        let reach = pcg.reachable_from(&chain_pred(0, 4));
        assert_eq!(reach.len(), 6);
        assert!(reach.contains("base"));
        assert!(!reach.contains(&chain_pred(0, 3)));
        assert!(!reach.contains(&chain_pred(1, 0)), "chains are disjoint");
    }

    #[test]
    fn chain_query_text() {
        assert_eq!(chain_query(2, 0, "a"), "?- g2_p0(a, W).");
    }

    #[test]
    fn fanout_rule_base_counts() {
        let p = fanout_rule_base(3, 4, "base");
        assert_eq!(p.len(), 3 + 3 * 4);
        let pcg = Pcg::build(&p);
        let reach = pcg.reachable_from("root");
        // All 12 branch predicates plus base.
        assert_eq!(reach.len(), 13);
    }
}
