//! Criterion counterpart of Figure 11, plus the ablation for the
//! specialized transitive-closure operator (paper conclusion #8): the
//! generic SQL LFP loop versus the in-engine TC operator on the same
//! query and data.

use bench_harness::tree_session;
use criterion::{criterion_group, criterion_main, Criterion};
use km::LfpStrategy;
use std::hint::black_box;

fn bench_lfp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfp");
    group.sample_size(10);
    for depth in [7u32, 8, 9] {
        let mut session = tree_session(depth, false, LfpStrategy::SemiNaive).expect("session");
        let compiled = session.compile("?- anc(n1, W).").expect("compile");
        group.bench_function(format!("seminaive/depth={depth}"), |b| {
            b.iter(|| black_box(session.execute(&compiled).expect("run").rows.len()))
        });
    }

    // Ablation: the specialized TC operator against the SQL loop.
    for depth in [8u32, 9] {
        let mut session = tree_session(depth, false, LfpStrategy::SemiNaive).expect("session");
        session.config.special_tc = true;
        let compiled = session.compile("?- anc(n1, W).").expect("compile");
        group.bench_function(format!("tc_operator/depth={depth}"), |b| {
            b.iter(|| black_box(session.execute(&compiled).expect("run").rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lfp);
criterion_main!(benches);
