//! Criterion counterpart of Figures 7/8: relevant-rule extraction from the
//! Stored D/KB, including the no-index ablation explaining Figure 7's
//! flatness.

use bench_harness::chain_session;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use workload::rules::chain_query;

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract");

    // Indexed compiled storage: flat in R_s, growing in R_rs.
    for (chains, r_rs) in [(5usize, 1usize), (20, 1), (5, 20), (20, 20)] {
        let mut session = chain_session(chains, 20).expect("session");
        let query = chain_query(0, 20 - r_rs, "a");
        group.bench_function(format!("Rs={}/Rrs={}", chains * 20, r_rs), |b| {
            b.iter(|| {
                let compiled = session.compile(black_box(&query)).expect("compile");
                black_box(compiled.timings.t_extract)
            })
        });
    }

    // Ablation: drop the rulesource index — extraction degrades with R_s.
    for chains in [5usize, 20] {
        let mut session = chain_session(chains, 20).expect("session");
        session
            .db_execute("DROP INDEX rulesource_head")
            .expect("drop index");
        let query = chain_query(0, 19, "a");
        group.bench_function(format!("noindex/Rs={}", chains * 20), |b| {
            b.iter(|| {
                let compiled = session.compile(black_box(&query)).expect("compile");
                black_box(compiled.timings.t_extract)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
