//! Criterion counterpart of Figure 12 / Table 5: naive versus semi-naive
//! LFP evaluation on the same query and data.

use bench_harness::tree_session;
use criterion::{criterion_group, criterion_main, Criterion};
use km::LfpStrategy;
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_vs_seminaive");
    group.sample_size(10);
    for (name, strategy) in [
        ("naive", LfpStrategy::Naive),
        ("seminaive", LfpStrategy::SemiNaive),
    ] {
        let mut session = tree_session(8, false, strategy).expect("session");
        let compiled = session.compile("?- anc(n1, W).").expect("compile");
        group.bench_function(name, |b| {
            b.iter(|| black_box(session.execute(&compiled).expect("run").rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
