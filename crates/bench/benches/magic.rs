//! Criterion counterpart of Figures 13/14: magic sets on/off at low and
//! high query selectivity.

use bench_harness::tree_session;
use criterion::{criterion_group, criterion_main, Criterion};
use km::LfpStrategy;
use std::hint::black_box;
use workload::graphs::tree_node_at_level;

fn bench_magic(c: &mut Criterion) {
    let mut group = c.benchmark_group("magic");
    group.sample_size(10);
    let depth = 9u32;
    for (optimize, supplementary, level, label) in [
        (false, false, 1u32, "plain/high-sel"),
        (true, false, 1, "magic/high-sel"),
        (false, false, 6, "plain/low-sel"),
        (true, false, 6, "magic/low-sel"),
        (true, true, 6, "supplementary/low-sel"),
    ] {
        let mut session = tree_session(depth, optimize, LfpStrategy::SemiNaive).expect("session");
        session.config.supplementary = supplementary;
        let query = format!("?- anc({}, W).", tree_node_at_level(level));
        let compiled = session.compile(&query).expect("compile");
        group.bench_function(label, |b| {
            b.iter(|| black_box(session.execute(&compiled).expect("run").rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_magic);
criterion_main!(benches);
