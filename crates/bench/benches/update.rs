//! Criterion counterpart of Figure 15 / Table 8: stored-D/KB updates with
//! and without compiled rule storage, plus the incremental-vs-full
//! transitive-closure ablation DESIGN.md calls out.

use bench_harness::chain_session_configured;
use criterion::{criterion_group, criterion_main, Criterion};
use hornlog::pcg::Pcg;
use km::session::{Session, SessionConfig};
use std::hint::black_box;
use workload::rules::chain_pred;

const CHAIN_LEN: usize = 9;
const CHAINS: usize = 21; // R_s = 189

fn session_with_chains(compiled: bool) -> Session {
    chain_session_configured(
        CHAINS,
        CHAIN_LEN,
        SessionConfig {
            compiled_storage: compiled,
            ..SessionConfig::default()
        },
    )
    .expect("session")
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    group.sample_size(10);
    for (compiled, label) in [(true, "compiled"), (false, "source-only")] {
        group.bench_function(label, |b| {
            b.iter_with_setup(
                || {
                    let mut s = session_with_chains(compiled);
                    s.load_rules(&format!("newp(X, Y) :- {}(X, Y).\n", chain_pred(0, 0)))
                        .expect("load");
                    s
                },
                |mut s| black_box(s.commit_workspace().expect("update").total),
            )
        });
    }

    // Ablation: the same commit with and without write-ahead logging.
    // The gap between the two is the durability tax on the paper's t_u.
    for (durability, label) in [(false, "wal-off"), (true, "wal-on")] {
        group.bench_function(format!("wal/{label}"), |b| {
            b.iter_with_setup(
                || {
                    let mut s = chain_session_configured(
                        CHAINS,
                        CHAIN_LEN,
                        SessionConfig {
                            durability,
                            ..SessionConfig::default()
                        },
                    )
                    .expect("session");
                    s.load_rules(&format!("newp(X, Y) :- {}(X, Y).\n", chain_pred(0, 0)))
                        .expect("load");
                    s
                },
                |mut s| black_box(s.commit_workspace().expect("update").total),
            )
        });
    }

    // Ablation: incremental TC (composite only) vs re-closing the entire
    // stored rule base.
    let full_base = workload::chain_rule_base(CHAINS, CHAIN_LEN, "base");
    group.bench_function("tc/incremental", |b| {
        let composite = workload::chain_rule_base(1, CHAIN_LEN, "base");
        b.iter(|| black_box(Pcg::build(&composite).transitive_closure().len()))
    });
    group.bench_function("tc/full-rulebase", |b| {
        b.iter(|| black_box(Pcg::build(&full_base).transitive_closure().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
