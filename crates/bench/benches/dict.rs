//! Criterion counterpart of Figures 9/10: dictionary reads at varying
//! dictionary sizes and relevant-predicate counts.

use bench_harness::experiments::fig9::{dict_session, read_once};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dict(c: &mut Criterion) {
    let mut group = c.benchmark_group("dict");
    for (p_s, p_dr) in [(50usize, 1usize), (800, 1), (50, 10), (800, 10)] {
        let mut session = dict_session(p_s);
        group.bench_function(format!("Ps={p_s}/Pdr={p_dr}"), |b| {
            b.iter(|| black_box(read_once(&mut session, p_dr)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dict);
criterion_main!(benches);
