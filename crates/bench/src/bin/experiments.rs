//! Regenerate the paper's evaluation tables and figures.
//!
//! ```text
//! experiments            # run everything, in paper order
//! experiments fig13      # run one experiment
//! experiments --list     # list experiment ids
//! ```

use bench_harness::experiments::ALL;
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        // Tolerate a closed pipe (e.g. `experiments --list | head`).
        let mut out = std::io::stdout().lock();
        for (id, _) in ALL {
            if writeln!(out, "{id}").is_err() {
                break;
            }
        }
        return;
    }
    let selected: Vec<&(&str, fn())> = if args.is_empty() {
        ALL.iter().collect()
    } else {
        let mut picked = Vec::new();
        for arg in &args {
            match ALL.iter().find(|(id, _)| id == arg) {
                Some(entry) => picked.push(entry),
                None => {
                    eprintln!("unknown experiment: {arg} (try --list)");
                    std::process::exit(2);
                }
            }
        }
        picked
    };

    println!("D/KBMS testbed — experiment harness (Ramnarayan & Lu, SIGMOD 1988)");
    let start = Instant::now();
    for (id, run) in selected {
        let t = Instant::now();
        run();
        println!("[{id} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
    println!(
        "\nAll selected experiments done in {:.1}s.",
        start.elapsed().as_secs_f64()
    );
}
