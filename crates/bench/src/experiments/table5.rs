//! Table 5 — Test 6: relative contributions of the steps of naive and
//! semi-naive LFP evaluation.
//!
//! Paper shape: RHS evaluation plus termination checking consumes ~95% of
//! naive evaluation and ~85% of semi-naive; the naive RHS/termination
//! absolute times are 2.5-3x those of semi-naive; temp-table churn is the
//! visible remainder for semi-naive.

use crate::{f3, ms, pct, print_table, tree_session};
use km::{LfpBreakdown, LfpStrategy};
use workload::graphs::tree_node_at_level;

const DEPTH: u32 = 9;

fn measure(strategy: LfpStrategy) -> LfpBreakdown {
    let mut s = tree_session(DEPTH, false, strategy).expect("session");
    let query = format!("?- anc({}, W).", tree_node_at_level(1));
    let compiled = s.compile(&query).expect("compile");
    // Best-of-3 by total breakdown time.
    let mut best: Option<LfpBreakdown> = None;
    for _ in 0..3 {
        let b = s.execute(&compiled).expect("run").outcome.breakdown;
        if best.is_none_or(|prev| b.total_time() < prev.total_time()) {
            best = Some(b);
        }
    }
    best.expect("ran")
}

pub fn run() {
    let mut rows = Vec::new();
    let mut absolute = Vec::new();
    for (name, strategy) in [
        ("naive", LfpStrategy::Naive),
        ("semi-naive", LfpStrategy::SemiNaive),
    ] {
        let b = measure(strategy);
        let total = b.total_time();
        rows.push(vec![
            name.to_string(),
            pct(b.t_temp_tables, total),
            pct(b.t_eval_rhs, total),
            pct(b.t_termination, total),
            b.iterations.to_string(),
            b.n_temp_ops.to_string(),
            b.n_eval_stmts.to_string(),
            b.n_term_checks.to_string(),
        ]);
        absolute.push(vec![
            name.to_string(),
            f3(ms(b.t_temp_tables)),
            f3(ms(b.t_eval_rhs)),
            f3(ms(b.t_termination)),
            f3(ms(total)),
        ]);
    }
    print_table(
        &format!("Table 5: LFP step breakdown (ancestor, depth-{DEPTH} tree, full query)"),
        &[
            "strategy",
            "temp-tables",
            "eval RHS",
            "termination",
            "iters",
            "#ddl",
            "#eval",
            "#term",
        ],
        &rows,
    );
    print_table(
        "Table 5 (absolute, ms)",
        &[
            "strategy",
            "temp-tables",
            "eval RHS",
            "termination",
            "total",
        ],
        &absolute,
    );
    println!(
        "Paper shape: eval+termination ~95% (naive) / ~85% (semi-naive); \
         naive eval+termination times 2.5-3x semi-naive."
    );
}
