//! End-to-end observability trace — replays the Figure 11–14 recursive
//! workloads and writes `BENCH_trace.json`: for every clique of every
//! workload, the per-iteration delta cardinalities, per-phase statement
//! timings, plan-cache activity, and magic vs modified-rules attribution,
//! plus a final engine-metrics snapshot.
//!
//! The trace is self-consistent by construction: each clique's `setup_ms`
//! plus its summed per-iteration wall times reconstructs the clique's
//! measured wall time, so the per-iteration rows re-derive the Figure 11
//! and Figure 14 totals (EXPERIMENTS.md walks through the arithmetic).

use crate::{f3, ms, print_table, tree_session};
use km::session::QueryResult;
use km::{CliqueTrace, LfpStrategy};
use rdbms::metrics::json_escape;
use std::fmt::Write as _;
use std::time::Duration;
use workload::graphs::tree_node_at_level;

/// Wall time attributed to cliques: what the per-clique traces must
/// account for.
fn lfp_wall(r: &QueryResult) -> Duration {
    r.outcome
        .node_timings
        .iter()
        .filter(|n| n.is_clique)
        .map(|n| n.elapsed)
        .sum()
}

/// Sum of everything the trace records for one clique.
fn trace_sum(t: &CliqueTrace) -> Duration {
    t.t_setup + t.iterations.iter().map(|i| i.t_total).sum::<Duration>()
}

fn json_clique(out: &mut String, t: &CliqueTrace) {
    let preds: Vec<String> = t
        .predicates
        .iter()
        .map(|p| format!("\"{}\"", json_escape(p)))
        .collect();
    let _ = write!(
        out,
        "        {{\"predicates\": [{}], \"is_magic\": {}, \"total_ms\": {:.3}, \
         \"setup_ms\": {:.3}, \"iterations\": [\n",
        preds.join(", "),
        t.is_magic,
        ms(t.total),
        ms(t.t_setup)
    );
    for (i, it) in t.iterations.iter().enumerate() {
        let delta: Vec<String> = it
            .delta_cards
            .iter()
            .map(|(p, n)| format!("\"{}\": {n}", json_escape(p)))
            .collect();
        let _ = write!(
            out,
            "          {{\"iteration\": {}, \"t_total_ms\": {:.3}, \"t_temp_ms\": {:.3}, \
             \"t_eval_ms\": {:.3}, \"t_term_ms\": {:.3}, \"plan_cache_hits\": {}, \
             \"plan_cache_misses\": {}, \"plan_replans\": {}, \"statements\": {}, \
             \"delta\": {{{}}}}}{}\n",
            it.iteration,
            ms(it.t_total),
            ms(it.t_temp),
            ms(it.t_eval),
            ms(it.t_term),
            it.plan_cache_hits,
            it.plan_cache_misses,
            it.plan_replans,
            it.statements,
            delta.join(", "),
            if i + 1 < t.iterations.len() { "," } else { "" }
        );
    }
    out.push_str("        ]}");
}

pub fn run() {
    // The recursive workloads of §5: the Figure 11 tree closure under both
    // strategies, the larger Figure 12/13 tree, and the Figure 14 magic-sets
    // evaluation of a selective query (two cliques: magic then modified).
    struct Workload {
        name: &'static str,
        depth: u32,
        optimize: bool,
        strategy: LfpStrategy,
        query: String,
    }
    let workloads = [
        Workload {
            name: "fig11-tree-d8-naive",
            depth: 8,
            optimize: false,
            strategy: LfpStrategy::Naive,
            query: "?- anc(n1, W).".to_string(),
        },
        Workload {
            name: "fig11-tree-d8-semi_naive",
            depth: 8,
            optimize: false,
            strategy: LfpStrategy::SemiNaive,
            query: "?- anc(n1, W).".to_string(),
        },
        Workload {
            name: "fig12-tree-d10-semi_naive",
            depth: 10,
            optimize: false,
            strategy: LfpStrategy::SemiNaive,
            query: "?- anc(n1, W).".to_string(),
        },
        Workload {
            name: "fig14-magic-d8-level3",
            depth: 8,
            optimize: true,
            strategy: LfpStrategy::SemiNaive,
            query: format!("?- anc({}, W).", tree_node_at_level(3)),
        },
    ];

    let mut rows = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"trace\",\n  \"workloads\": [\n");
    let mut last_metrics = String::from("{}");
    for (w_idx, w) in workloads.iter().enumerate() {
        let mut session = tree_session(w.depth, w.optimize, w.strategy).expect("session");
        let compiled = session.compile(&w.query).expect("compile");
        let r = session.execute(&compiled).expect("execute");

        let wall = lfp_wall(&r);
        let sum: Duration = r.outcome.clique_traces.iter().map(trace_sum).sum();
        let coverage = if wall.is_zero() {
            1.0
        } else {
            sum.as_secs_f64() / wall.as_secs_f64()
        };
        assert!(
            (coverage - 1.0).abs() <= 0.05,
            "{}: trace accounts for {:.1}% of the measured LFP wall time",
            w.name,
            100.0 * coverage
        );
        let iterations: u64 = r
            .outcome
            .clique_traces
            .iter()
            .map(|t| t.iterations.len() as u64)
            .sum();
        let n_magic = r
            .outcome
            .clique_traces
            .iter()
            .filter(|t| t.is_magic)
            .count();
        if w.optimize {
            assert!(n_magic > 0, "{}: magic sets produce a magic clique", w.name);
        }
        rows.push(vec![
            w.name.to_string(),
            r.rows.len().to_string(),
            r.outcome.clique_traces.len().to_string(),
            iterations.to_string(),
            f3(ms(wall)),
            format!("{:.1}%", 100.0 * coverage),
            f3(ms(r.magic_time())),
            f3(ms(r.modified_time())),
        ]);

        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"depth\": {}, \"optimize\": {}, \
             \"strategy\": \"{}\", \"answers\": {},\n      \"total_ms\": {:.3}, \
             \"lfp_wall_ms\": {:.3}, \"trace_sum_ms\": {:.3}, \"coverage\": {:.4},\n      \
             \"magic_ms\": {:.3}, \"modified_ms\": {:.3},\n      \"cliques\": [\n",
            w.name,
            w.depth,
            w.optimize,
            match w.strategy {
                LfpStrategy::Naive => "naive",
                LfpStrategy::SemiNaive => "semi_naive",
            },
            r.rows.len(),
            ms(r.t_execute),
            ms(wall),
            ms(sum),
            coverage,
            ms(r.magic_time()),
            ms(r.modified_time()),
        );
        for (i, t) in r.outcome.clique_traces.iter().enumerate() {
            json_clique(&mut json, t);
            json.push_str(if i + 1 < r.outcome.clique_traces.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(
            json,
            "      ]\n    }}{}\n",
            if w_idx + 1 < workloads.len() { "," } else { "" }
        );
        last_metrics = session.engine().metrics().to_json();
    }
    let _ = write!(json, "  ],\n  \"engine_metrics\": {last_metrics}\n}}\n");

    print_table(
        "LFP execution trace: per-clique iteration accounting",
        &[
            "workload",
            "answers",
            "cliques",
            "iters",
            "lfp wall(ms)",
            "traced",
            "magic(ms)",
            "modified(ms)",
        ],
        &rows,
    );
    println!("`traced` is the share of LFP wall time the per-iteration trace");
    println!("accounts for (setup + iteration rows; must stay within 5%).");

    match std::fs::write("BENCH_trace.json", &json) {
        Ok(()) => println!("Wrote BENCH_trace.json."),
        Err(e) => eprintln!("could not write BENCH_trace.json: {e}"),
    }
}
