//! Optimizer ablation — the cost-based planner (live statistics, pushdown
//! rewrites, cardinality-driven join ordering and join-method selection)
//! against the legacy heuristic planner it replaced.
//!
//! Re-runs the Figure 11/12/14 recursive traces under both planner modes
//! and adds a synthetic skewed three-way join where the FROM order is
//! adversarial. Hard assertions, so CI fails on a planner regression:
//! answers must be identical under both modes, the cost-based planner must
//! never lose a trace by more than 10% (plus a small absolute slack for
//! timer noise), and it must be measurably faster somewhere. Writes
//! `BENCH_optimizer.json`.

use crate::experiments::min_of;
use crate::{f3, ms, print_table, tree_session};
use km::LfpStrategy;
use rdbms::metrics::json_escape;
use rdbms::{Engine, PlannerMode, Value};
use std::fmt::Write as _;
use std::time::Duration;
use workload::graphs::tree_node_at_level;

/// A cost-based trace may be at most 10% slower than the heuristic one...
const TOLERANCE: f64 = 1.10;
/// ...plus this much, so sub-millisecond traces don't fail on timer noise.
const SLACK: Duration = Duration::from_millis(2);

struct Trace {
    name: &'static str,
    depth: u32,
    optimize: bool,
    strategy: LfpStrategy,
    level: u32,
}

/// The Figure 11/12/14 workloads the paper's query-processing evaluation
/// is built on: the flat-selectivity semi-naive closure, the naive
/// strategy that recomputes every iteration, and the magic-sets run.
const TRACES: &[Trace] = &[
    Trace {
        name: "fig11-tree-d10-semi_naive",
        depth: 10,
        optimize: false,
        strategy: LfpStrategy::SemiNaive,
        level: 3,
    },
    Trace {
        name: "fig12-tree-d9-naive",
        depth: 9,
        optimize: false,
        strategy: LfpStrategy::Naive,
        level: 1,
    },
    Trace {
        name: "fig14-magic-d10-level3",
        depth: 10,
        optimize: true,
        strategy: LfpStrategy::SemiNaive,
        level: 3,
    },
];

/// Run one trace under `mode`: best-of-N execution time plus the sorted
/// answer set for cross-mode comparison.
fn run_trace(t: &Trace, mode: PlannerMode) -> (Duration, Vec<Vec<Value>>) {
    let mut s = tree_session(t.depth, t.optimize, t.strategy).expect("session");
    s.engine_mut().set_planner_mode(mode);
    let query = format!("?- anc({}, W).", tree_node_at_level(t.level));
    let compiled = s.compile(&query).expect("compile");
    let mut rows = s.execute(&compiled).expect("run").rows;
    rows.sort();
    let t_e = min_of(5, || s.execute(&compiled).expect("run").t_execute);
    (t_e, rows)
}

/// A three-way join over a skewed column where the legacy planner's flat
/// selectivity constants are maximally wrong: `big.flag = 7` matches every
/// row, but the heuristic prices any equality filter at 1/20 and therefore
/// drives the join with 8000 rows. The cost-based planner's distinct count
/// knows the filter keeps everything and drives with the small relation
/// instead. Returns time, sorted rows, and EXPLAIN text.
fn run_synthetic(mode: PlannerMode) -> (Duration, Vec<Vec<Value>>, Vec<String>) {
    let mut e = Engine::new();
    e.set_planner_mode(mode);
    e.execute("CREATE TABLE big (a int, b int, flag int)")
        .expect("ddl");
    e.execute("CREATE TABLE mid (b int, c int)").expect("ddl");
    e.execute("CREATE TABLE small (c int, d int)").expect("ddl");
    e.execute("CREATE INDEX big_b ON big (b)").expect("ddl");
    e.execute("CREATE INDEX mid_b ON mid (b)").expect("ddl");
    e.execute("CREATE INDEX mid_c ON mid (c)").expect("ddl");
    e.execute("CREATE INDEX small_c ON small (c)").expect("ddl");
    // Skew: every big row carries flag = 7, so `flag = 7` keeps all 8000
    // rows; only a quarter of them join through mid, all of mid joins
    // through small.
    e.insert_rows(
        "big",
        (0..8000)
            .map(|i| vec![Value::Int(i), Value::Int(i), Value::Int(7)])
            .collect(),
    )
    .expect("load");
    e.insert_rows(
        "mid",
        (0..2000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 600)])
            .collect(),
    )
    .expect("load");
    e.insert_rows(
        "small",
        (0..600)
            .map(|i| vec![Value::Int(i), Value::Int(i)])
            .collect(),
    )
    .expect("load");

    let sql = "SELECT big.a FROM big, mid, small \
               WHERE big.flag = 7 AND big.b = mid.b AND mid.c = small.c";
    let plan: Vec<String> = e
        .execute(&format!("EXPLAIN {sql}"))
        .expect("explain")
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.clone(),
            v => format!("{v:?}"),
        })
        .collect();
    let mut rows = e.execute(sql).expect("run").rows;
    rows.sort();
    let t = min_of(5, || {
        let start = std::time::Instant::now();
        e.execute(sql).expect("run");
        start.elapsed()
    });
    (t, rows, plan)
}

fn speedup(heur: Duration, cost: Duration) -> f64 {
    heur.as_secs_f64() / cost.as_secs_f64().max(1e-9)
}

fn check_budget(name: &str, heur: Duration, cost: Duration) {
    let budget = heur.mul_f64(TOLERANCE) + SLACK;
    assert!(
        cost <= budget,
        "{name}: cost-based planner regressed — {:.3}ms vs heuristic {:.3}ms \
         (budget {:.3}ms)",
        ms(cost),
        ms(heur),
        ms(budget)
    );
}

pub fn run() {
    let mut rows = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"optimizer\",\n");
    let _ = write!(json, "  \"tolerance\": {TOLERANCE},\n  \"traces\": [\n");
    let mut best = f64::MIN;

    for (i, t) in TRACES.iter().enumerate() {
        let (t_heur, rows_heur) = run_trace(t, PlannerMode::Heuristic);
        let (t_cost, rows_cost) = run_trace(t, PlannerMode::CostBased);
        assert_eq!(
            rows_heur, rows_cost,
            "{}: planner modes must agree on answers",
            t.name
        );
        check_budget(t.name, t_heur, t_cost);
        let s = speedup(t_heur, t_cost);
        best = best.max(s);
        rows.push(vec![
            t.name.to_string(),
            rows_cost.len().to_string(),
            f3(ms(t_heur)),
            f3(ms(t_cost)),
            format!("{s:.2}x"),
        ]);
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"answers\": {}, \"heuristic_ms\": {:.3}, \
             \"cost_ms\": {:.3}, \"speedup\": {:.3}, \"answers_match\": true}}{}\n",
            t.name,
            rows_cost.len(),
            ms(t_heur),
            ms(t_cost),
            s,
            if i + 1 < TRACES.len() { "," } else { "" }
        );
    }

    let (t_heur, rows_heur, plan_heur) = run_synthetic(PlannerMode::Heuristic);
    let (t_cost, rows_cost, plan_cost) = run_synthetic(PlannerMode::CostBased);
    assert_eq!(rows_heur, rows_cost, "synthetic: answers must agree");
    check_budget("synthetic-3way", t_heur, t_cost);
    assert_ne!(
        plan_heur, plan_cost,
        "synthetic: the adversarial FROM order must make the planners \
         choose different plans"
    );
    let s = speedup(t_heur, t_cost);
    best = best.max(s);
    rows.push(vec![
        "synthetic-3way-skew".to_string(),
        rows_cost.len().to_string(),
        f3(ms(t_heur)),
        f3(ms(t_cost)),
        format!("{s:.2}x"),
    ]);
    let plan_json = |plan: &[String]| {
        plan.iter()
            .map(|l| format!("\"{}\"", json_escape(l)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = write!(
        json,
        "  ],\n  \"synthetic\": {{\"heuristic_ms\": {:.3}, \"cost_ms\": {:.3}, \
         \"speedup\": {:.3}, \"plans_differ\": true,\n    \"heuristic_plan\": [{}],\n    \
         \"cost_plan\": [{}]}},\n  \"best_speedup\": {:.3}\n}}\n",
        ms(t_heur),
        ms(t_cost),
        s,
        plan_json(&plan_heur),
        plan_json(&plan_cost),
        best
    );

    print_table(
        "Optimizer ablation: heuristic vs cost-based planner, t_e (ms)",
        &["trace", "answers", "heuristic", "cost-based", "speedup"],
        &rows,
    );
    println!("Answers are identical under both modes; the cost-based planner");
    println!("must stay within 10% everywhere and win somewhere (asserted).");
    println!("\nSynthetic three-way join plans:");
    println!("  heuristic:  {}", plan_heur.join(" | "));
    println!("  cost-based: {}", plan_cost.join(" | "));

    match std::fs::write("BENCH_optimizer.json", &json) {
        Ok(()) => println!("Wrote BENCH_optimizer.json."),
        Err(e) => eprintln!("could not write BENCH_optimizer.json: {e}"),
    }

    assert!(
        best > 1.0,
        "cost-based planner must be measurably faster on at least one trace \
         (best speedup {best:.3}x)"
    );
}
