//! Figure 11 — Test 4: query execution time `t_e` versus the fraction of
//! relevant facts `D_rel/D_tot`, varied two ways (semi-naive, no
//! optimization).
//!
//! Method 1 fixes the parent relation and moves the query root across
//! subtree levels: without magic sets the whole closure is computed
//! regardless, so `t_e` is flat. Method 2 fixes the query's subtree size
//! and grows the parent relation: `t_e` grows with `D_tot`.

use crate::experiments::min_of;
use crate::{f3, ms, print_table, tree_session};
use km::LfpStrategy;
use workload::graphs::{subtree_edges, tree_node_at_level};

pub fn run() {
    // Method 1: fixed D_tot (depth-10 tree, 1022 edges), varying root.
    let depth = 10;
    let d_tot = subtree_edges(depth, 1);
    let mut rows = Vec::new();
    let mut session = tree_session(depth, false, LfpStrategy::SemiNaive).expect("session");
    for level in [1u32, 2, 3, 5, 7] {
        let d_rel = subtree_edges(depth, level);
        let query = format!("?- anc({}, W).", tree_node_at_level(level));
        let compiled = session.compile(&query).expect("compile");
        let t = min_of(3, || session.execute(&compiled).expect("execute").t_execute);
        rows.push(vec![
            format!("{:.1}%", 100.0 * d_rel as f64 / d_tot as f64),
            d_rel.to_string(),
            d_tot.to_string(),
            f3(ms(t)),
        ]);
    }
    print_table(
        "Figure 11 (method 1): t_e vs D_rel/D_tot, D_tot fixed",
        &["D_rel/D_tot", "D_rel", "D_tot", "t_e(ms)"],
        &rows,
    );
    println!("Paper shape: flat — without magic sets the full closure is computed.");

    // Method 2: fixed D_rel (a depth-6 subtree: 62 edges), growing D_tot.
    let sub_depth = 6;
    let mut rows = Vec::new();
    for depth in [7u32, 8, 9, 10, 11] {
        let level = depth - sub_depth + 1;
        let d_rel = subtree_edges(depth, level);
        let d_tot = subtree_edges(depth, 1);
        let mut session = tree_session(depth, false, LfpStrategy::SemiNaive).expect("session");
        let query = format!("?- anc({}, W).", tree_node_at_level(level));
        let compiled = session.compile(&query).expect("compile");
        let t = min_of(3, || session.execute(&compiled).expect("execute").t_execute);
        rows.push(vec![
            format!("{:.1}%", 100.0 * d_rel as f64 / d_tot as f64),
            d_rel.to_string(),
            d_tot.to_string(),
            f3(ms(t)),
        ]);
    }
    print_table(
        "Figure 11 (method 2): t_e vs D_rel/D_tot, D_rel fixed (62 edges)",
        &["D_rel/D_tot", "D_rel", "D_tot", "t_e(ms)"],
        &rows,
    );
    println!("Paper shape: t_e grows as D_tot grows (ratio falls).");
}
