//! Figure 13 — Test 7: the magic-sets optimization versus query
//! selectivity.
//!
//! Paper shape: without optimization `t_e` is flat (the full closure is
//! computed regardless of the query constant); with optimization `t_e`
//! tracks the relevant fraction. The curves cross: the paper reports a
//! crossover around 72% selectivity for semi-naive and 85% for naive, and
//! orders-of-magnitude wins at very low selectivity on large relations.

use crate::experiments::min_of;
use crate::{f3, ms, print_table, tree_session};
use km::{LfpStrategy, Session};
use std::time::Duration;
use workload::graphs::{subtree_edges, tree_node_at_level};

const DEPTH: u32 = 10;

fn t_e(session: &mut Session, query: &str, reps: usize) -> Duration {
    let compiled = session.compile(query).expect("compile");
    min_of(reps, || session.execute(&compiled).expect("run").t_execute)
}

pub fn run() {
    let d_tot = subtree_edges(DEPTH, 1);
    let mut plain_semi = tree_session(DEPTH, false, LfpStrategy::SemiNaive).expect("s");
    let mut magic_semi = tree_session(DEPTH, true, LfpStrategy::SemiNaive).expect("s");
    let mut plain_naive = tree_session(DEPTH, false, LfpStrategy::Naive).expect("s");
    let mut magic_naive = tree_session(DEPTH, true, LfpStrategy::Naive).expect("s");

    let mut rows = Vec::new();
    let mut crossover_semi: Option<f64> = None;
    let mut crossover_naive: Option<f64> = None;
    let mut prev_sel = 100.0;
    for level in [1u32, 2, 3, 4, 6, 8] {
        let sel = 100.0 * subtree_edges(DEPTH, level) as f64 / d_tot as f64;
        let query = format!("?- anc({}, W).", tree_node_at_level(level));
        let ps = t_e(&mut plain_semi, &query, 3);
        let ms_ = t_e(&mut magic_semi, &query, 3);
        let pn = t_e(&mut plain_naive, &query, 2);
        let mn = t_e(&mut magic_naive, &query, 2);
        if ms_ <= ps && crossover_semi.is_none() {
            crossover_semi = Some((sel + prev_sel) / 2.0);
        }
        if mn <= pn && crossover_naive.is_none() {
            crossover_naive = Some((sel + prev_sel) / 2.0);
        }
        prev_sel = sel;
        rows.push(vec![
            format!("{sel:.1}%"),
            f3(ms(ps)),
            f3(ms(ms_)),
            f3(ms(pn)),
            f3(ms(mn)),
        ]);
    }
    print_table(
        &format!("Figure 13: t_e (ms) vs query selectivity, depth-{DEPTH} tree"),
        &["selectivity", "semi", "semi+magic", "naive", "naive+magic"],
        &rows,
    );
    match (crossover_semi, crossover_naive) {
        (Some(cs), Some(cn)) => println!(
            "Measured crossovers: semi-naive ~{cs:.0}%, naive ~{cn:.0}% \
             (paper: ~72% and ~85%)."
        ),
        _ => println!("Crossover not observed within the sweep."),
    }

    // The very-low-selectivity, large-relation case: "orders of magnitude".
    let big = 12u32; // 4094 edges; query selects a depth-4 subtree (14 edges)
    let level = big - 3;
    let query = format!("?- anc({}, W).", tree_node_at_level(level));
    let mut plain = tree_session(big, false, LfpStrategy::SemiNaive).expect("s");
    let mut magic = tree_session(big, true, LfpStrategy::SemiNaive).expect("s");
    let tp = t_e(&mut plain, &query, 1);
    let tm = t_e(&mut magic, &query, 1);
    println!(
        "Low selectivity ({:.2}%) on {} edges: without magic {:.1} ms, with magic {:.1} ms \
         ({:.0}x; paper: orders of magnitude).",
        100.0 * subtree_edges(big, level) as f64 / subtree_edges(big, 1) as f64,
        subtree_edges(big, 1),
        ms(tp),
        ms(tm),
        tp.as_secs_f64() / tm.as_secs_f64().max(1e-9),
    );
}
