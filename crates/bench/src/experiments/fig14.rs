//! Figure 14 — Test 7 (continued): the two LFP computations under magic
//! sets — evaluating the magic rules versus evaluating the modified rules
//! — as a function of query selectivity.
//!
//! Paper shape: both shrink as the relevant fraction shrinks, but the
//! modified-rules evaluation falls faster (it is sensitive to `D_rel`),
//! while the magic-rules evaluation tracks the base-relation size more.

use crate::{f3, ms, print_table, tree_session};
use km::LfpStrategy;
use workload::graphs::{subtree_edges, tree_node_at_level};

const DEPTH: u32 = 10;

pub fn run() {
    let d_tot = subtree_edges(DEPTH, 1);
    let mut session = tree_session(DEPTH, true, LfpStrategy::SemiNaive).expect("session");
    let mut rows = Vec::new();
    for level in [1u32, 2, 3, 4, 6, 8] {
        let sel = 100.0 * subtree_edges(DEPTH, level) as f64 / d_tot as f64;
        let query = format!("?- anc({}, W).", tree_node_at_level(level));
        let compiled = session.compile(&query).expect("compile");
        // Best-of-3 on total execution; keep that run's split.
        let mut best: Option<km::QueryResult> = None;
        for _ in 0..3 {
            let r = session.execute(&compiled).expect("run");
            if best.as_ref().is_none_or(|b| r.t_execute < b.t_execute) {
                best = Some(r);
            }
        }
        let r = best.expect("ran");
        rows.push(vec![
            format!("{sel:.1}%"),
            f3(ms(r.magic_time())),
            f3(ms(r.modified_time())),
            f3(ms(r.t_execute)),
        ]);
    }
    print_table(
        &format!("Figure 14: magic vs modified rules evaluation time (ms), depth-{DEPTH} tree"),
        &["selectivity", "magic rules", "modified rules", "total"],
        &rows,
    );
    println!(
        "Paper shape: modified-rules time falls faster with selectivity than \
         magic-rules time."
    );
}
