//! Extra experiment (beyond the paper): plain vs generalized magic sets vs
//! supplementary magic sets (§2.5 names all three) on the two classic
//! recursive programs. At these body lengths the supplementary variant's
//! extra materialized tables cost slightly more than the shared prefix
//! join saves — the same flavor of tradeoff the paper reports for magic
//! sets themselves (Figure 13's crossover).

use crate::experiments::min_of;
use crate::{edges_to_rows, f3, ms, print_table};
use km::session::{binary_sym, Session, SessionConfig};
use rdbms::Value;
use std::time::Duration;
use workload::graphs::{full_binary_tree, tree_node_at_level};

fn sg_session(depth: u32, optimize: bool, supplementary: bool) -> Session {
    let mut s = Session::new(SessionConfig {
        optimize,
        supplementary,
        ..SessionConfig::default()
    })
    .expect("session");
    let edges = full_binary_tree(depth);
    for rel in ["up", "down", "flat"] {
        s.define_base(rel, &binary_sym()).expect("base");
    }
    s.load_facts(
        "up",
        edges
            .iter()
            .map(|(a, b)| vec![Value::from(b.as_str()), Value::from(a.as_str())])
            .collect(),
    )
    .expect("facts");
    s.load_facts("down", edges_to_rows(&edges)).expect("facts");
    s.load_facts("flat", vec![vec![Value::from("n1"), Value::from("n1")]])
        .expect("facts");
    s.load_rules(workload::same_generation()).expect("rules");
    s
}

fn anc_session(depth: u32, optimize: bool, supplementary: bool) -> Session {
    let mut s = Session::new(SessionConfig {
        optimize,
        supplementary,
        ..SessionConfig::default()
    })
    .expect("session");
    s.define_base("parent", &binary_sym()).expect("base");
    s.load_facts("parent", edges_to_rows(&full_binary_tree(depth)))
        .expect("facts");
    s.load_rules(&workload::ancestor_program("parent"))
        .expect("rules");
    s
}

fn t_e(s: &mut Session, query: &str) -> Duration {
    let compiled = s.compile(query).expect("compile");
    min_of(3, || s.execute(&compiled).expect("run").t_execute)
}

pub fn run() {
    let depth = 9;
    let mut rows = Vec::new();
    for level in [5u32, 7, 9] {
        let node = tree_node_at_level(level);
        let sg_q = format!("?- sg({node}, W).");
        let anc_q = format!("?- anc({node}, W).");
        rows.push(vec![
            format!("sg({node})"),
            f3(ms(t_e(&mut sg_session(depth, false, false), &sg_q))),
            f3(ms(t_e(&mut sg_session(depth, true, false), &sg_q))),
            f3(ms(t_e(&mut sg_session(depth, true, true), &sg_q))),
        ]);
        rows.push(vec![
            format!("anc({node})"),
            f3(ms(t_e(&mut anc_session(depth, false, false), &anc_q))),
            f3(ms(t_e(&mut anc_session(depth, true, false), &anc_q))),
            f3(ms(t_e(&mut anc_session(depth, true, true), &anc_q))),
        ]);
    }
    print_table(
        &format!("Extra: optimizer strategies, t_e (ms), depth-{depth} tree"),
        &["query", "plain", "magic", "supplementary"],
        &rows,
    );
    println!(
        "Beyond the paper: §2.5 lists supplementary magic next to magic sets. \
         Both restrict evaluation identically; at these rule-body lengths the \
         supplementary tables' materialization overhead slightly exceeds the \
         prefix-sharing benefit — an optimization tradeoff of the same flavor \
         as Figure 13's magic-sets crossover."
    );
}
