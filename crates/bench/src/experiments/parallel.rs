//! Parallel-evaluation ablation — the Figure 11/12/14 tree workloads
//! swept over 1/2/4/8 executor workers (`SessionConfig::parallelism`).
//!
//! The knob feeds two layers at once: the engine's partitioned operators
//! (SeqScan/HashJoin/AntiJoin split their probe side across workers) and
//! the Knowledge Manager's clique DAG scheduler plus per-iteration
//! delta-statement batches. Answers must be byte-identical at every
//! setting — this experiment asserts that, reports wall times and the
//! engine's parallel counters, and writes `BENCH_parallel.json` for CI
//! trend-tracking.
//!
//! Speedups depend on available cores: on a single-core host the
//! parallel settings pay thread spawn/join overhead with no CPU to win
//! back (the partitions run back-to-back), while `parallelism: 1` takes
//! the exact serial code path — the "no regression when off" half of
//! the contract. Multi-core hosts should see the fig11 depth-10
//! semi-naive workload improve at 4 workers.

use crate::{f3, ms, print_table, tree_session_configured};
use km::session::{QueryResult, Session, SessionConfig};
use km::LfpStrategy;
use rdbms::Value;
use std::fmt::Write as _;
use std::time::Duration;

const WORKER_SWEEP: &[usize] = &[1, 2, 4, 8];

struct Run {
    wall: Duration,
    rows: Vec<Vec<Value>>,
    tasks_spawned: u64,
    partition_skew: u64,
}

struct Workload {
    name: &'static str,
    depth: u32,
    strategy: LfpStrategy,
    optimize: bool,
    query: &'static str,
}

/// The paper workloads the parallel layer targets: Figure 11's tree
/// closure (semi-naive at depth 10, both strategies at depth 8), Figure
/// 12's naive-evaluation shape at depth 9, and Figure 14's magic-sets
/// plan at depth 10 (its rewritten program has several interdependent
/// cliques, so it also exercises the DAG scheduler).
const WORKLOADS: &[Workload] = &[
    Workload {
        name: "fig11-tree-d10-seminaive",
        depth: 10,
        strategy: LfpStrategy::SemiNaive,
        optimize: false,
        query: "?- anc(n1, W).",
    },
    Workload {
        name: "fig11-tree-d8-naive",
        depth: 8,
        strategy: LfpStrategy::Naive,
        optimize: false,
        query: "?- anc(n1, W).",
    },
    Workload {
        name: "fig12-tree-d9-naive",
        depth: 9,
        strategy: LfpStrategy::Naive,
        optimize: false,
        query: "?- anc(n2, W).",
    },
    Workload {
        name: "fig14-tree-d10-magic",
        depth: 10,
        strategy: LfpStrategy::SemiNaive,
        optimize: true,
        query: "?- anc(n4, W).",
    },
];

fn measure(w: &Workload, workers: usize) -> Run {
    let mut session = tree_session_configured(
        w.depth,
        SessionConfig {
            strategy: w.strategy,
            optimize: w.optimize,
            parallelism: workers,
            ..SessionConfig::default()
        },
    )
    .expect("session");
    best_run(&mut session, 3, w.query)
}

/// Execute the compiled query `n` times on one session and keep the run
/// with the smallest wall time (same noise-stripping as
/// [`crate::experiments::min_of`], but retaining the full result).
fn best_run(session: &mut Session, n: usize, query: &str) -> Run {
    let compiled = session.compile(query).expect("compile");
    let mut best: Option<QueryResult> = None;
    for _ in 0..n.max(1) {
        let r = session.execute(&compiled).expect("execute");
        if best.as_ref().is_none_or(|b| r.t_execute < b.t_execute) {
            best = Some(r);
        }
    }
    let best = best.expect("n >= 1");
    let stats = session.engine().stats();
    let mut rows = best.rows;
    rows.sort();
    Run {
        wall: best.t_execute,
        rows,
        tasks_spawned: stats.exec.tasks_spawned,
        partition_skew: stats.exec.partition_skew,
    }
}

pub fn run() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // On a single-core host the sweep still runs (correctness is asserted
    // at every setting) but wall-time ratios measure only thread overhead,
    // so the recorded speedups are flagged as not meaningful rather than
    // treated as regressions.
    let speedup_meaningful = cores > 1;

    let mut table = Vec::new();
    let mut json = format!(
        "{{\n  \"experiment\": \"parallel\",\n  \"host_cores\": {cores},\n  \
         \"speedup_meaningful\": {speedup_meaningful},\n  \"workloads\": [\n"
    );
    for (i, w) in WORKLOADS.iter().enumerate() {
        let runs: Vec<Run> = WORKER_SWEEP.iter().map(|&n| measure(w, n)).collect();
        let serial = &runs[0];
        for (r, &n) in runs.iter().zip(WORKER_SWEEP) {
            assert_eq!(
                r.rows, serial.rows,
                "{}: answers at {} workers must equal serial",
                w.name, n
            );
        }
        let mut cells = vec![w.name.to_string(), serial.rows.len().to_string()];
        cells.extend(runs.iter().map(|r| f3(ms(r.wall))));
        cells.push(format!(
            "{:.2}x",
            ms(serial.wall) / ms(runs[2].wall).max(1e-9)
        ));
        table.push(cells);

        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"depth\": {}, \"answers\": {},\n      \"runs\": [",
            w.name,
            w.depth,
            serial.rows.len()
        );
        for (j, (r, &n)) in runs.iter().zip(WORKER_SWEEP).enumerate() {
            let _ = write!(
                json,
                "{}{{\"workers\": {}, \"wall_ms\": {:.3}, \"speedup\": {:.3}, \
                 \"tasks_spawned\": {}, \"partition_skew_pct\": {}}}",
                if j == 0 { "" } else { ", " },
                n,
                ms(r.wall),
                ms(serial.wall) / ms(r.wall).max(1e-9),
                r.tasks_spawned,
                r.partition_skew,
            );
        }
        let _ = write!(
            json,
            "]\n    }}{}\n",
            if i + 1 < WORKLOADS.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let headers = [
        "workload", "answers", "w=1(ms)", "w=2(ms)", "w=4(ms)", "w=8(ms)", "x@4",
    ];
    print_table(
        &format!(
            "Parallel-evaluation ablation: LFP wall time by worker count ({cores} host cores)"
        ),
        &headers,
        &table,
    );
    println!("Answers are asserted byte-identical at every worker count; speedup");
    println!("(x@4) is serial wall over the 4-worker wall on this host.");
    if !speedup_meaningful {
        println!(
            "NOTE: single-core host — speedup columns measure thread overhead \
             only and are not expected to exceed 1.0x."
        );
    }

    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => println!("Wrote BENCH_parallel.json."),
        Err(e) => eprintln!("could not write BENCH_parallel.json: {e}"),
    }
}
