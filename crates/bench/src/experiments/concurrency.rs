//! Concurrent multi-session sweep, written to `BENCH_concurrency.json`.
//!
//! Sessions (threads) × write mix × target-table contention × group
//! commit on/off. Each thread runs a fixed op count against one
//! [`SharedEngine`]: reads execute on the session's private snapshot,
//! writes are autocommit transactions funnelled through the commit
//! queue. Per cell we report throughput, fsyncs per commit, and the
//! first-committer-wins conflict rate.
//!
//! The two contention modes tell the story together. Commit validation
//! is table-granular — it must be, because commits replay their SQL on
//! the live engine, so any concurrent change to a written table would
//! make the replay diverge from what the session observed. Under
//! `shared` contention (all writers on one table) a drained batch can
//! therefore commit at most one transaction: conflicts/commit climbs
//! and group commit has nothing to coalesce. Under `private` contention
//! (each session writes its own table) batches commit wholesale and the
//! fsyncs/commit ratio falls below 1 as sessions are added; with group
//! commit off it is pinned at 1. `RDBMS_FSYNC_MICROS` (default 200
//! here) prices each fsync so the batching also shows up as throughput,
//! the way it would on real storage.

use crate::{f3, print_table};
use rdbms::{Engine, SharedEngine};
use std::fmt::Write as _;
use std::time::Instant;

const SESSIONS: &[usize] = &[1, 2, 4, 8];
const WRITE_PCTS: &[u32] = &[100, 50];
const OPS_PER_SESSION: usize = 100;
const DEFAULT_FSYNC_MICROS: u64 = 200;

#[derive(Clone, Copy, PartialEq)]
enum Contention {
    /// Every writer inserts into the same table: maximal validation
    /// conflicts, no batching headroom.
    Shared,
    /// Each session writes its own table: commits commute, batches
    /// commit wholesale.
    Private,
}

impl Contention {
    fn name(self) -> &'static str {
        match self {
            Contention::Shared => "shared",
            Contention::Private => "private",
        }
    }
}

struct Cell {
    sessions: usize,
    write_pct: u32,
    contention: Contention,
    group_commit: bool,
    ops: u64,
    commits: u64,
    conflicts: u64,
    elapsed_ms: f64,
    ops_per_sec: f64,
    fsyncs: u64,
    group_commits: u64,
}

impl Cell {
    fn fsyncs_per_commit(&self) -> f64 {
        self.fsyncs as f64 / (self.commits as f64).max(1.0)
    }
    fn conflict_rate(&self) -> f64 {
        self.conflicts as f64 / (self.commits as f64).max(1.0)
    }
}

/// `kv` is the shared read/write target; `kv_s<t>` is session `t`'s
/// private write target in the low-contention mode.
fn seeded(sessions: usize) -> SharedEngine {
    let mut db = Engine::new();
    db.execute("CREATE TABLE kv (k int, v int)").unwrap();
    db.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
        .unwrap();
    for t in 0..sessions {
        db.execute(&format!("CREATE TABLE kv_s{t} (k int, v int)"))
            .unwrap();
    }
    SharedEngine::new(db)
}

/// Deterministic per-op coin: write iff the hash of (thread, op) lands
/// under `write_pct`. Keeps every run byte-reproducible without an RNG.
fn is_write(thread: usize, op: usize, write_pct: u32) -> bool {
    let h = (thread as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(op as u64)
        .wrapping_mul(0x2545_f491_4f6c_dd1d);
    (h % 100) < u64::from(write_pct)
}

fn run_cell(sessions: usize, write_pct: u32, contention: Contention, group_commit: bool) -> Cell {
    let shared = seeded(sessions);
    shared.set_group_commit(group_commit);
    let t0 = Instant::now();
    let per_thread: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|t| {
                let shared = shared.clone();
                scope.spawn(move || {
                    let mut s = shared.session();
                    let table = match contention {
                        Contention::Shared => "kv".to_string(),
                        Contention::Private => format!("kv_s{t}"),
                    };
                    for op in 0..OPS_PER_SESSION {
                        if is_write(t, op, write_pct) {
                            let k = 1000 + (t * OPS_PER_SESSION + op) as i64;
                            // Autocommit: the session revalidates and
                            // retries on WriteConflict, bumping its
                            // conflict counter each time it loses.
                            s.execute(&format!("INSERT INTO {table} VALUES ({k}, {t})"))
                                .unwrap();
                        } else {
                            s.execute("SELECT k, v FROM kv WHERE k = 1").unwrap();
                        }
                    }
                    (s.commits(), s.conflicts())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();
    let m = shared.metrics();
    let ops = (sessions * OPS_PER_SESSION) as u64;
    Cell {
        sessions,
        write_pct,
        contention,
        group_commit,
        ops,
        commits: per_thread.iter().map(|&(c, _)| c).sum(),
        conflicts: per_thread.iter().map(|&(_, c)| c).sum(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64().max(1e-9),
        fsyncs: m.counter_value("wal.fsyncs"),
        group_commits: m.counter_value("wal.group_commits"),
    }
}

pub fn run() {
    // Give fsyncs a visible cost unless the caller picked one; the
    // engine reads the variable at SharedEngine construction.
    if std::env::var("RDBMS_FSYNC_MICROS").is_err() {
        std::env::set_var("RDBMS_FSYNC_MICROS", DEFAULT_FSYNC_MICROS.to_string());
    }
    let fsync_micros = std::env::var("RDBMS_FSYNC_MICROS").unwrap();

    let mut cells = Vec::new();
    for &contention in &[Contention::Private, Contention::Shared] {
        for &write_pct in WRITE_PCTS {
            for &sessions in SESSIONS {
                for group_commit in [false, true] {
                    cells.push(run_cell(sessions, write_pct, contention, group_commit));
                }
            }
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.sessions.to_string(),
                format!("{}%", c.write_pct),
                c.contention.name().to_string(),
                if c.group_commit { "on" } else { "off" }.to_string(),
                format!("{:.0}", c.ops_per_sec),
                f3(c.fsyncs_per_commit()),
                f3(c.conflict_rate()),
                c.group_commits.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Concurrency sweep: {OPS_PER_SESSION} ops/session, fsync {fsync_micros}us"),
        &[
            "sessions",
            "writes",
            "contention",
            "group commit",
            "ops/s",
            "fsyncs/commit",
            "conflicts/commit",
            "batches",
        ],
        &rows,
    );
    println!(
        "Reads never block: they run on per-session snapshots without touching \
         the commit queue. Private-table writers show group commit at work — \
         fsyncs/commit drops below 1 as sessions contend for the WAL. \
         Shared-table writers show the cost of table-granular validation \
         instead: each batch commits one winner, the rest retry."
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"experiment\": \"concurrency\",\n  \"ops_per_session\": {OPS_PER_SESSION},\n  \
         \"fsync_micros\": {fsync_micros},\n  \"cells\": ["
    );
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"sessions\": {}, \"write_pct\": {}, \"contention\": \"{}\", \
             \"group_commit\": {}, \"ops\": {}, \"commits\": {}, \"conflicts\": {}, \
             \"elapsed_ms\": {:.3}, \"ops_per_sec\": {:.1}, \"fsyncs\": {}, \
             \"fsyncs_per_commit\": {:.4}, \"conflict_rate\": {:.4}, \
             \"group_commit_batches\": {}}}",
            if i == 0 { "" } else { "," },
            c.sessions,
            c.write_pct,
            c.contention.name(),
            c.group_commit,
            c.ops,
            c.commits,
            c.conflicts,
            c.elapsed_ms,
            c.ops_per_sec,
            c.fsyncs,
            c.fsyncs_per_commit(),
            c.conflict_rate(),
            c.group_commits,
        );
    }
    let _ = write!(json, "\n  ]\n}}\n");
    match std::fs::write("BENCH_concurrency.json", &json) {
        Ok(()) => println!("Wrote BENCH_concurrency.json."),
        Err(e) => eprintln!("could not write BENCH_concurrency.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate's shape: group commit must strictly reduce
    /// fsyncs/commit once disjoint-table sessions contend for the WAL.
    #[test]
    fn group_commit_reduces_fsyncs_per_commit() {
        std::env::set_var("RDBMS_FSYNC_MICROS", "500");
        let off = run_cell(4, 100, Contention::Private, false);
        let on = run_cell(4, 100, Contention::Private, true);
        assert!(off.commits > 0 && on.commits > 0);
        assert!(
            (off.fsyncs_per_commit() - 1.0).abs() < 1e-9,
            "without group commit every commit fsyncs itself, got {}",
            off.fsyncs_per_commit()
        );
        assert!(
            on.fsyncs_per_commit() <= off.fsyncs_per_commit(),
            "group commit must not fsync more often ({} vs {})",
            on.fsyncs_per_commit(),
            off.fsyncs_per_commit()
        );
        assert_eq!(off.conflicts, 0, "private tables cannot conflict");
        assert_eq!(on.conflicts, 0, "private tables cannot conflict");
    }

    #[test]
    fn autocommit_writers_never_surface_conflicts() {
        let cell = run_cell(4, 50, Contention::Shared, true);
        assert_eq!(cell.ops, 400);
        // Conflicts are retried inside the session; callers see none,
        // so every write op lands exactly one commit.
        let writes: u64 = (0..4)
            .flat_map(|t| (0..OPS_PER_SESSION).map(move |op| is_write(t, op, 50)))
            .filter(|&w| w)
            .count() as u64;
        assert_eq!(cell.commits, writes);
    }

    #[test]
    fn write_mix_is_deterministic() {
        let picks: Vec<bool> = (0..32).map(|op| is_write(1, op, 50)).collect();
        let again: Vec<bool> = (0..32).map(|op| is_write(1, op, 50)).collect();
        assert_eq!(picks, again);
        let writes = picks.iter().filter(|&&w| w).count();
        assert!((8..=24).contains(&writes), "mix badly skewed: {writes}/32");
    }
}
