//! Concurrent multi-session sweep, written to `BENCH_concurrency.json`.
//!
//! Sessions (threads) × write mix × target-table contention × group
//! commit on/off. Each thread runs a fixed op count against one
//! [`SharedEngine`]: reads execute on the session's private snapshot,
//! writes are autocommit transactions funnelled through the commit
//! queue. Per cell we report throughput, fsyncs per commit, and the
//! first-committer-wins conflict rate.
//!
//! The two contention modes tell the story together, and the `shared`
//! mode is additionally run under both validation granularities. With
//! table-granular validation any concurrent change to a written table
//! fails a committer, so under `shared` contention (all writers on one
//! table) a drained batch commits at most one transaction:
//! conflicts/commit climbs and group commit has nothing to coalesce.
//! Key-granular validation (the default) tracks the written keys per
//! table version instead; the sweep's insert keys are disjoint, the
//! commits commute, and the conflict rate collapses to zero — the
//! before/after pair in `BENCH_concurrency.json` quantifies it. Under
//! `private` contention (each session writes its own table) batches
//! commit wholesale either way and the fsyncs/commit ratio falls below
//! 1 as sessions are added; with group commit off it is pinned at 1.
//! `RDBMS_FSYNC_MICROS` (default 200 here) prices each fsync so the
//! batching also shows up as throughput, the way it would on real
//! storage.
//!
//! A second sweep raises the same question one layer up: N knowledge
//! manager sessions attached to one shared stored D/KB
//! ([`Session::attach`]), each interleaving workspace commits of new
//! facts with recursive-query evaluations. Commits go through the
//! validated stored-update path; queries evaluate semi-naive LFPs on
//! the session's snapshot fork with namespaced temporaries.

use crate::{f3, print_table};
use km::session::{binary_sym, Session, SessionConfig};
use rdbms::{Engine, SharedEngine, Value};
use std::fmt::Write as _;
use std::time::Instant;

const SESSIONS: &[usize] = &[1, 2, 4, 8];
const WRITE_PCTS: &[u32] = &[100, 50];
const OPS_PER_SESSION: usize = 100;
const DEFAULT_FSYNC_MICROS: u64 = 200;

#[derive(Clone, Copy, PartialEq)]
enum Contention {
    /// Every writer inserts into the same table: maximal validation
    /// conflicts, no batching headroom.
    Shared,
    /// Each session writes its own table: commits commute, batches
    /// commit wholesale.
    Private,
}

impl Contention {
    fn name(self) -> &'static str {
        match self {
            Contention::Shared => "shared",
            Contention::Private => "private",
        }
    }
}

struct Cell {
    sessions: usize,
    write_pct: u32,
    contention: Contention,
    group_commit: bool,
    key_granular: bool,
    ops: u64,
    commits: u64,
    conflicts: u64,
    elapsed_ms: f64,
    ops_per_sec: f64,
    fsyncs: u64,
    group_commits: u64,
}

impl Cell {
    fn fsyncs_per_commit(&self) -> f64 {
        self.fsyncs as f64 / (self.commits as f64).max(1.0)
    }
    fn conflict_rate(&self) -> f64 {
        self.conflicts as f64 / (self.commits as f64).max(1.0)
    }
}

/// `kv` is the shared read/write target; `kv_s<t>` is session `t`'s
/// private write target in the low-contention mode.
fn seeded(sessions: usize) -> SharedEngine {
    let mut db = Engine::new();
    db.execute("CREATE TABLE kv (k int, v int)").unwrap();
    db.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
        .unwrap();
    for t in 0..sessions {
        db.execute(&format!("CREATE TABLE kv_s{t} (k int, v int)"))
            .unwrap();
    }
    SharedEngine::new(db)
}

/// Deterministic per-op coin: write iff the hash of (thread, op) lands
/// under `write_pct`. Keeps every run byte-reproducible without an RNG.
fn is_write(thread: usize, op: usize, write_pct: u32) -> bool {
    let h = (thread as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(op as u64)
        .wrapping_mul(0x2545_f491_4f6c_dd1d);
    (h % 100) < u64::from(write_pct)
}

fn run_cell(
    sessions: usize,
    write_pct: u32,
    contention: Contention,
    group_commit: bool,
    key_granular: bool,
) -> Cell {
    let shared = seeded(sessions);
    shared.set_group_commit(group_commit);
    shared.set_key_granular(key_granular);
    let t0 = Instant::now();
    let per_thread: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|t| {
                let shared = shared.clone();
                scope.spawn(move || {
                    let mut s = shared.session();
                    let table = match contention {
                        Contention::Shared => "kv".to_string(),
                        Contention::Private => format!("kv_s{t}"),
                    };
                    for op in 0..OPS_PER_SESSION {
                        if is_write(t, op, write_pct) {
                            let k = 1000 + (t * OPS_PER_SESSION + op) as i64;
                            // Autocommit: the session revalidates and
                            // retries on WriteConflict, bumping its
                            // conflict counter each time it loses.
                            s.execute(&format!("INSERT INTO {table} VALUES ({k}, {t})"))
                                .unwrap();
                        } else {
                            s.execute("SELECT k, v FROM kv WHERE k = 1").unwrap();
                        }
                    }
                    (s.commits(), s.conflicts())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();
    let m = shared.metrics();
    let ops = (sessions * OPS_PER_SESSION) as u64;
    Cell {
        sessions,
        write_pct,
        contention,
        group_commit,
        key_granular,
        ops,
        commits: per_thread.iter().map(|&(c, _)| c).sum(),
        conflicts: per_thread.iter().map(|&(_, c)| c).sum(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64().max(1e-9),
        fsyncs: m.counter_value("wal.fsyncs"),
        group_commits: m.counter_value("wal.group_commits"),
    }
}

const KM_SESSIONS: &[usize] = &[1, 2, 4];
const KM_ROUNDS: usize = 8;
const KM_CHAIN: usize = 8;

struct KmCell {
    sessions: usize,
    rounds: u64,
    queries: u64,
    workspace_commits: u64,
    /// MVCC transactions committed across all attached sessions
    /// (bootstrap, autocommit loads, workspace commits).
    mvcc_commits: u64,
    conflicts: u64,
    elapsed_ms: f64,
    rounds_per_sec: f64,
    /// Cardinality of the recursive answer every query returned.
    answer_rows: u64,
}

/// One shared stored D/KB, N attached knowledge-manager sessions. Each
/// session alternates a workspace commit (one new fact, validated
/// stored-update path) with a recursive-query evaluation (semi-naive
/// LFP on the session's snapshot fork, namespaced temporaries). The
/// committed facts are disconnected from the queried chain, so every
/// answer — under every interleaving — must be byte-identical to the
/// serial chain closure; the cell panics otherwise.
fn run_km_cell(sessions: usize, rounds: usize) -> KmCell {
    let shared = SharedEngine::new(Engine::new());
    {
        let mut s = Session::attach(&shared, SessionConfig::default()).expect("attach");
        s.define_base("parent", &binary_sym()).expect("base");
        let chain: Vec<Vec<Value>> = (0..KM_CHAIN - 1)
            .map(|i| {
                vec![
                    Value::Str(format!("a{i}")),
                    Value::Str(format!("a{}", i + 1)),
                ]
            })
            .collect();
        s.load_facts("parent", chain).expect("facts");
        s.load_rules(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .expect("rules");
        s.commit_workspace().expect("bootstrap commit");
    }
    let expect_rows = (KM_CHAIN - 1) as u64;
    let t0 = Instant::now();
    let per_thread: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|t| {
                let shared = shared.clone();
                scope.spawn(move || {
                    let mut s = Session::attach(&shared, SessionConfig::default()).expect("attach");
                    for r in 0..rounds {
                        s.load_rules(&format!("parent(b{t}r{r}, c{t}r{r}).\n"))
                            .expect("stage fact");
                        s.commit_workspace().expect("workspace commit");
                        let (_, res) = s.query("?- anc(a0, W).").expect("query");
                        assert_eq!(
                            res.rows.len() as u64,
                            expect_rows,
                            "shared-session answer diverged from the serial closure"
                        );
                    }
                    s.commit_counters()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();
    let total_rounds = (sessions * rounds) as u64;
    KmCell {
        sessions,
        rounds: total_rounds,
        queries: total_rounds,
        workspace_commits: total_rounds,
        mvcc_commits: per_thread.iter().map(|&(c, _)| c).sum(),
        conflicts: per_thread.iter().map(|&(_, c)| c).sum(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        rounds_per_sec: total_rounds as f64 / elapsed.as_secs_f64().max(1e-9),
        answer_rows: expect_rows,
    }
}

pub fn run() {
    // Give fsyncs a visible cost unless the caller picked one; the
    // engine reads the variable at SharedEngine construction.
    if std::env::var("RDBMS_FSYNC_MICROS").is_err() {
        std::env::set_var("RDBMS_FSYNC_MICROS", DEFAULT_FSYNC_MICROS.to_string());
    }
    let fsync_micros = std::env::var("RDBMS_FSYNC_MICROS").unwrap();

    let mut cells = Vec::new();
    for &contention in &[Contention::Private, Contention::Shared] {
        for &write_pct in WRITE_PCTS {
            for &sessions in SESSIONS {
                for group_commit in [false, true] {
                    // Private-table commits commute at either granularity;
                    // only the shared table shows the ablation.
                    let granularities: &[bool] = match contention {
                        Contention::Shared => &[false, true],
                        Contention::Private => &[true],
                    };
                    for &key_granular in granularities {
                        cells.push(run_cell(
                            sessions,
                            write_pct,
                            contention,
                            group_commit,
                            key_granular,
                        ));
                    }
                }
            }
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.sessions.to_string(),
                format!("{}%", c.write_pct),
                c.contention.name().to_string(),
                if c.group_commit { "on" } else { "off" }.to_string(),
                if c.key_granular { "key" } else { "table" }.to_string(),
                format!("{:.0}", c.ops_per_sec),
                f3(c.fsyncs_per_commit()),
                f3(c.conflict_rate()),
                c.group_commits.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Concurrency sweep: {OPS_PER_SESSION} ops/session, fsync {fsync_micros}us"),
        &[
            "sessions",
            "writes",
            "contention",
            "group commit",
            "validation",
            "ops/s",
            "fsyncs/commit",
            "conflicts/commit",
            "batches",
        ],
        &rows,
    );
    println!(
        "Reads never block: they run on per-session snapshots without touching \
         the commit queue. Private-table writers show group commit at work — \
         fsyncs/commit drops below 1 as sessions contend for the WAL. \
         Shared-table writers show the validation granularity instead: \
         table-granular lets each batch commit one winner while the rest \
         retry; key-granular sees the disjoint insert keys commute and the \
         conflict rate collapse."
    );

    let km_cells: Vec<KmCell> = KM_SESSIONS
        .iter()
        .map(|&n| run_km_cell(n, KM_ROUNDS))
        .collect();
    let km_rows: Vec<Vec<String>> = km_cells
        .iter()
        .map(|c| {
            vec![
                c.sessions.to_string(),
                c.rounds.to_string(),
                format!("{:.0}", c.rounds_per_sec),
                c.workspace_commits.to_string(),
                c.mvcc_commits.to_string(),
                f3(c.conflicts as f64 / (c.mvcc_commits as f64).max(1.0)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Multi-user stored D/KB: {KM_ROUNDS} commit+query rounds/session, \
             chain of {KM_CHAIN}"
        ),
        &[
            "sessions",
            "rounds",
            "rounds/s",
            "ws commits",
            "mvcc commits",
            "conflicts/commit",
        ],
        &km_rows,
    );
    println!(
        "Every session's every recursive answer matched the serial closure — \
         workspace commits ride first-committer-wins validation while LFPs \
         evaluate on private snapshot forks with namespaced temporaries."
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"experiment\": \"concurrency\",\n  \"ops_per_session\": {OPS_PER_SESSION},\n  \
         \"fsync_micros\": {fsync_micros},\n  \"cells\": ["
    );
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"sessions\": {}, \"write_pct\": {}, \"contention\": \"{}\", \
             \"group_commit\": {}, \"key_granular\": {}, \"ops\": {}, \"commits\": {}, \
             \"conflicts\": {}, \"elapsed_ms\": {:.3}, \"ops_per_sec\": {:.1}, \
             \"fsyncs\": {}, \"fsyncs_per_commit\": {:.4}, \"conflict_rate\": {:.4}, \
             \"group_commit_batches\": {}}}",
            if i == 0 { "" } else { "," },
            c.sessions,
            c.write_pct,
            c.contention.name(),
            c.group_commit,
            c.key_granular,
            c.ops,
            c.commits,
            c.conflicts,
            c.elapsed_ms,
            c.ops_per_sec,
            c.fsyncs,
            c.fsyncs_per_commit(),
            c.conflict_rate(),
            c.group_commits,
        );
    }
    let _ = write!(json, "\n  ],\n  \"km_cells\": [");
    for (i, c) in km_cells.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{\"sessions\": {}, \"rounds\": {}, \"queries\": {}, \
             \"workspace_commits\": {}, \"mvcc_commits\": {}, \"conflicts\": {}, \
             \"elapsed_ms\": {:.3}, \"rounds_per_sec\": {:.1}, \"answer_rows\": {}}}",
            if i == 0 { "" } else { "," },
            c.sessions,
            c.rounds,
            c.queries,
            c.workspace_commits,
            c.mvcc_commits,
            c.conflicts,
            c.elapsed_ms,
            c.rounds_per_sec,
            c.answer_rows,
        );
    }
    let _ = write!(json, "\n  ]\n}}\n");
    match std::fs::write("BENCH_concurrency.json", &json) {
        Ok(()) => println!("Wrote BENCH_concurrency.json."),
        Err(e) => eprintln!("could not write BENCH_concurrency.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate's shape: group commit must strictly reduce
    /// fsyncs/commit once disjoint-table sessions contend for the WAL.
    #[test]
    fn group_commit_reduces_fsyncs_per_commit() {
        std::env::set_var("RDBMS_FSYNC_MICROS", "500");
        let off = run_cell(4, 100, Contention::Private, false, true);
        let on = run_cell(4, 100, Contention::Private, true, true);
        assert!(off.commits > 0 && on.commits > 0);
        assert!(
            (off.fsyncs_per_commit() - 1.0).abs() < 1e-9,
            "without group commit every commit fsyncs itself, got {}",
            off.fsyncs_per_commit()
        );
        assert!(
            on.fsyncs_per_commit() <= off.fsyncs_per_commit(),
            "group commit must not fsync more often ({} vs {})",
            on.fsyncs_per_commit(),
            off.fsyncs_per_commit()
        );
        assert_eq!(off.conflicts, 0, "private tables cannot conflict");
        assert_eq!(on.conflicts, 0, "private tables cannot conflict");
    }

    #[test]
    fn autocommit_writers_never_surface_conflicts() {
        let cell = run_cell(4, 50, Contention::Shared, true, true);
        assert_eq!(cell.ops, 400);
        // Conflicts are retried inside the session; callers see none,
        // so every write op lands exactly one commit.
        let writes: u64 = (0..4)
            .flat_map(|t| (0..OPS_PER_SESSION).map(move |op| is_write(t, op, 50)))
            .filter(|&w| w)
            .count() as u64;
        assert_eq!(cell.commits, writes);
    }

    /// The PR's headline number: on the shared-table insert workload
    /// (disjoint keys), key-granular validation must show a measurably
    /// lower conflict rate than the table-granular baseline.
    #[test]
    fn key_granular_validation_lowers_shared_conflict_rate() {
        let table = run_cell(4, 100, Contention::Shared, true, false);
        let key = run_cell(4, 100, Contention::Shared, true, true);
        assert!(table.commits > 0 && key.commits > 0);
        assert_eq!(
            key.conflicts, 0,
            "disjoint-key inserts commute under key granularity"
        );
        assert!(
            table.conflicts > 0,
            "the table-granular baseline must show contention for the \
             ablation to mean anything"
        );
        assert!(key.conflict_rate() < table.conflict_rate());
    }

    /// The km sweep's invariant is enforced inside the cell (every
    /// answer equals the serial closure); here we pin the counters.
    #[test]
    fn km_shared_cell_commits_and_answers() {
        let cell = run_km_cell(2, 2);
        assert_eq!(cell.rounds, 4);
        assert_eq!(cell.workspace_commits, 4);
        assert!(cell.mvcc_commits >= cell.workspace_commits);
        assert_eq!(cell.answer_rows, (KM_CHAIN - 1) as u64);
    }

    #[test]
    fn write_mix_is_deterministic() {
        let picks: Vec<bool> = (0..32).map(|op| is_write(1, op, 50)).collect();
        let again: Vec<bool> = (0..32).map(|op| is_write(1, op, 50)).collect();
        assert_eq!(picks, again);
        let writes = picks.iter().filter(|&&w| w).count();
        assert!((8..=24).contains(&writes), "mix badly skewed: {writes}/32");
    }
}
