//! Figure 8 — Test 1 (continued): `t_extract` versus the number of rules
//! relevant to the query, `R_rs`, at a fixed stored rule base.
//!
//! Paper shape: `t_extract` increases with `R_rs` (the join selectivity of
//! the extraction query tracks the number of rules actually retrieved).

use crate::experiments::min_of;
use crate::{chain_session, f3, ms, print_table};
use workload::rules::chain_query;

const CHAIN_LEN: usize = 20;
const CHAINS: usize = 20; // R_s = 400 fixed
const R_RS: &[usize] = &[1, 2, 5, 10, 15, 20];

pub fn run() {
    let mut session = chain_session(CHAINS, CHAIN_LEN).expect("session");
    let mut rows = Vec::new();
    for &r_rs in R_RS {
        let query = chain_query(0, CHAIN_LEN - r_rs, "a");
        let t = min_of(5, || {
            let compiled = session.compile(&query).expect("compile");
            assert_eq!(compiled.relevant_rules, r_rs);
            compiled.timings.t_extract
        });
        rows.push(vec![r_rs.to_string(), f3(ms(t))]);
    }
    print_table(
        &format!(
            "Figure 8: t_extract (ms) vs relevant rules R_rs (R_s = {})",
            CHAINS * CHAIN_LEN
        ),
        &["R_rs", "t_extract"],
        &rows,
    );
    println!("Paper shape: increasing in R_rs.");
}
