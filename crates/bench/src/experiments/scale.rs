//! Scaled-workload benchmark: memory-bounded execution at 10^5–10^7
//! edges — three orders of magnitude past the paper's Table 1 sizes.
//!
//! Four measurements per tier, written to `BENCH_scale.json`:
//!
//! 1. **t_q** — a raw self-join (`edge ⋈ edge`) on the engine, run once
//!    unbounded and once under a memory budget far smaller than the build
//!    side. The bounded run must go through the Grace spill path
//!    (`exec.spill_partitions > 0`) and produce byte-identical output.
//! 2. **t_eval** — the full ancestor closure over the same relation
//!    through the Knowledge Manager's LFP loop, again unbounded vs.
//!    budgeted; answer sets must match.
//! 3. **Parallelism** — the closure at 1/2/4 workers (first tier only),
//!    with `host_cores` recorded so single-core results aren't read as
//!    regressions.
//! 4. **Buffer pool** — scan pollution: indexed point lookups on a small
//!    hot table interleaved with full scans of the big heap. The hot
//!    lookups' hit rate must stay high even when the pool (32 frames) is
//!    a tiny fraction of the scanned relation — scans fault pages in
//!    cold and recycle their own frames instead of evicting the working
//!    set.
//!
//! The graph family is [`workload::scaled_chains`]: disjoint 5-edge
//! chains, so the closure is exactly 3× the edge count at any scale and
//! the sweep's cost stays linear. A skewed power-law join at the first
//! tier covers the hash-partition worst case (one hub-heavy partition).
//! `edge` deliberately carries **no index** on the join column: the point
//! is to force hash joins whose build side dwarfs the budget.
//!
//! Tiers above `SCALE_MAX_EDGES` (default 10^6; CI sets 10^5) are
//! skipped and listed in the output — 10^7 runs with
//! `SCALE_MAX_EDGES=10000000`. The closure evaluation is additionally
//! capped at 10^6 edges (3×10^7 answers would dominate the artifact
//! with no new information). Reproduce any row from the recorded
//! `seed` alone.

use crate::{f3, ms, print_table};
use hornlog::types::AttrType;
use km::session::{Session, SessionConfig};
use rdbms::schema::serialize_tuple;
use rdbms::spill::fnv1a;
use rdbms::{Engine, Value};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use workload::scale::{int_edges_to_rows, scaled_chains, scaled_power_law, IntEdges};

/// Seed recorded in the artifact; every generator call derives from it.
const SEED: u64 = 42;

/// Memory budget for the bounded runs: far below the build side of even
/// the smallest tier (10^5 tuples ≈ several MiB serialized).
const SPILL_BUDGET: u64 = 1 << 20;

/// Rows per bulk-insert chunk while loading, so a 10^7-edge load never
/// materializes all its engine rows at once.
const INSERT_CHUNK: usize = 100_000;

/// Closure evaluation is skipped above this tier (see module docs).
const TC_MAX_EDGES: usize = 1_000_000;

const JOIN_SQL: &str = "SELECT a.c0, b.c1 FROM edge a, edge b WHERE a.c1 = b.c0";

fn max_edges() -> usize {
    std::env::var("SCALE_MAX_EDGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

/// Order-sensitive fingerprint of a row stream: FNV of each serialized
/// tuple folded with the FNV prime. Two streams collide only if they are
/// (for all practical purposes) byte-identical in content and order.
fn fold_rows(rows: &[Vec<Value>]) -> u64 {
    let mut h = 0u64;
    for row in rows {
        h = (h ^ fnv1a(&serialize_tuple(row))).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn load_edges(db: &mut Engine, edges: &IntEdges) {
    db.execute("CREATE TABLE edge (c0 int, c1 int)")
        .expect("create");
    for chunk in edges.chunks(INSERT_CHUNK) {
        db.insert_rows("edge", int_edges_to_rows(chunk))
            .expect("load");
    }
}

struct JoinRun {
    wall: Duration,
    rows: usize,
    hash: u64,
    spill_partitions: u64,
    spill_bytes: u64,
    /// Full output, kept only at the smallest tier for the exact compare.
    data: Option<Vec<Vec<Value>>>,
}

/// Run the self-join once on a fresh engine, optionally budgeted.
fn run_join(edges: &IntEdges, budget: Option<u64>, keep_rows: bool) -> JoinRun {
    let mut db = Engine::new();
    load_edges(&mut db, edges);
    db.set_memory_budget(budget);
    let before = db.stats().exec;
    let t = Instant::now();
    let rs = db.execute(JOIN_SQL).expect("join");
    let wall = t.elapsed();
    let after = db.stats().exec;
    JoinRun {
        wall,
        rows: rs.rows.len(),
        hash: fold_rows(&rs.rows),
        spill_partitions: after.spill_partitions - before.spill_partitions,
        spill_bytes: after.spill_bytes - before.spill_bytes,
        data: keep_rows.then_some(rs.rows),
    }
}

struct TcRun {
    wall: Duration,
    answers: usize,
    hash: u64,
    spill_partitions: u64,
    sort_runs: u64,
}

/// Evaluate the full ancestor closure on a fresh session. Rows are
/// sorted before fingerprinting: the engine's operator output order is
/// deterministic, but the KM's clique scheduler batches inserts, so only
/// the *set* of answers is contracted across parallelism settings.
fn run_tc(edges: &IntEdges, budget: Option<u64>, workers: usize) -> TcRun {
    let mut s = Session::new(SessionConfig {
        memory_budget: budget,
        parallelism: workers,
        ..SessionConfig::default()
    })
    .expect("session");
    s.define_base("edge", &[AttrType::Int, AttrType::Int])
        .expect("base");
    for chunk in edges.chunks(INSERT_CHUNK) {
        s.load_facts("edge", int_edges_to_rows(chunk))
            .expect("facts");
    }
    s.load_rules(&workload::ancestor_program("edge"))
        .expect("rules");
    let compiled = s.compile("?- anc(X, Y).").expect("compile");
    let before = s.engine().stats().exec;
    let t = Instant::now();
    let r = s.execute(&compiled).expect("execute");
    let wall = t.elapsed();
    let after = s.engine().stats().exec;
    let mut rows = r.rows;
    rows.sort();
    TcRun {
        wall,
        answers: rows.len(),
        hash: fold_rows(&rows),
        spill_partitions: after.spill_partitions - before.spill_partitions,
        sort_runs: after.sort_runs - before.sort_runs,
    }
}

struct BufferProbe {
    /// Hit rate of the indexed point lookups alone.
    hot_hit_rate: f64,
    /// Hit rate over all traffic, scans included.
    overall_hit_rate: f64,
}

/// Scan-pollution probe: a small indexed lookup table (a few pages) is
/// kept hot while full scans of the `edge` heap — hundreds of pages,
/// dwarfing a 32-frame pool — stream through between lookup bursts.
/// The interesting number is the hit rate of the hot lookups alone: a
/// scan-susceptible replacement policy evicts the lookup pages on every
/// pass and collapses it, while cold insertion (scan frames enter the
/// pool unreferenced and recycle among themselves) keeps the working
/// set resident no matter how small the pool is.
fn buffer_probe(edges: &IntEdges, frames: usize) -> BufferProbe {
    let mut db = Engine::new();
    load_edges(&mut db, edges);
    db.execute("CREATE TABLE hot (k int, v int)").expect("hot");
    db.insert_rows(
        "hot",
        (0..256)
            .map(|i| vec![Value::Int(i), Value::Int(i * i)])
            .collect(),
    )
    .expect("hot rows");
    db.execute("CREATE INDEX hot_k ON hot (k)").expect("index");
    // Resizing drops every cached frame, so the probe starts cold either
    // way and the two pool sizes are compared fairly.
    db.set_pool_frames(frames).expect("resize");
    // Establish the working set before measuring.
    for k in 0..16 {
        db.execute(&format!("SELECT v FROM hot WHERE k = {k}"))
            .expect("warm lookup");
    }
    let before_all = db.stats().buffer;
    let (mut hot_hits, mut hot_misses) = (0u64, 0u64);
    for _ in 0..8 {
        // A full pass over the big heap (no index on c0, so this scans).
        db.execute("SELECT c1 FROM edge WHERE c0 = -1")
            .expect("scan");
        // The same point lookups again, between scans.
        let b = db.stats().buffer;
        for k in 0..16 {
            db.execute(&format!("SELECT v FROM hot WHERE k = {k}"))
                .expect("hot lookup");
        }
        let a = db.stats().buffer;
        hot_hits += a.hits - b.hits;
        hot_misses += a.misses - b.misses;
    }
    let after_all = db.stats().buffer;
    let (h, m) = (
        after_all.hits - before_all.hits,
        after_all.misses - before_all.misses,
    );
    BufferProbe {
        hot_hit_rate: hot_hits as f64 / (hot_hits + hot_misses).max(1) as f64,
        overall_hit_rate: h as f64 / (h + m).max(1) as f64,
    }
}

pub fn run() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap = max_edges();
    let all_tiers: &[usize] = &[100_000, 1_000_000, 10_000_000];
    let (tiers, skipped): (Vec<usize>, Vec<usize>) = all_tiers.iter().partition(|&&e| e <= cap);

    let mut table = Vec::new();
    let mut json = format!(
        "{{\n  \"experiment\": \"scale\",\n  \"seed\": {SEED},\n  \"host_cores\": {cores},\n  \
         \"budget_bytes\": {SPILL_BUDGET},\n  \"family\": \"chains-5\",\n  \"tiers\": [\n"
    );

    for (i, &edges_n) in tiers.iter().enumerate() {
        let edges = scaled_chains(edges_n);
        let first_tier = i == 0;

        // -- t_q: raw join, unbounded vs. budgeted ------------------------
        let mem = run_join(&edges, None, first_tier);
        let spill = run_join(&edges, Some(SPILL_BUDGET), first_tier);
        assert!(
            spill.spill_partitions > 0,
            "{edges_n} edges: budgeted join must spill (budget {SPILL_BUDGET})"
        );
        assert_eq!(mem.rows, spill.rows, "{edges_n} edges: row counts differ");
        assert_eq!(
            mem.hash, spill.hash,
            "{edges_n} edges: spilled join output diverged from in-memory"
        );
        if let (Some(a), Some(b)) = (&mem.data, &spill.data) {
            assert_eq!(a, b, "{edges_n} edges: full row compare failed");
        }

        // -- t_eval: LFP closure, unbounded vs. budgeted ------------------
        let tc = (edges_n <= TC_MAX_EDGES).then(|| {
            let mem = run_tc(&edges, None, 0);
            let spill = run_tc(&edges, Some(SPILL_BUDGET), 0);
            assert!(
                spill.spill_partitions > 0,
                "{edges_n} edges: budgeted closure must spill"
            );
            assert_eq!(
                (mem.answers, mem.hash),
                (spill.answers, spill.hash),
                "{edges_n} edges: spilled closure diverged from in-memory"
            );
            (mem, spill)
        });

        // -- parallelism sweep (first tier only) --------------------------
        let par: Vec<(usize, TcRun)> = if first_tier {
            [1usize, 2, 4]
                .iter()
                .map(|&w| (w, run_tc(&edges, None, w)))
                .collect()
        } else {
            Vec::new()
        };
        if let Some((_, serial)) = par.first() {
            for (w, r) in &par {
                assert_eq!(
                    (r.answers, r.hash),
                    (serial.answers, serial.hash),
                    "answers at {w} workers differ from serial"
                );
            }
        }

        // -- buffer-pool scan pollution (first tier only) -----------------
        // 32 frames = 128 KiB, far below the ~2.5 MiB heap of the 10^5
        // tier; 2048 frames = 8 MiB holds the whole working set. The hot
        // lookup set must survive the interleaved scans even at 32
        // frames — that is the scan-resistance claim, asserted here.
        let buf = first_tier.then(|| {
            let small = buffer_probe(&edges, 32);
            let large = buffer_probe(&edges, 2048);
            assert!(
                small.hot_hit_rate > 0.9,
                "scan pollution collapsed the 32-frame hot hit rate to {:.4}",
                small.hot_hit_rate
            );
            (small, large)
        });

        let (tc_mem_ms, tc_spill_ms, tc_answers) = match &tc {
            Some((m, s)) => (f3(ms(m.wall)), f3(ms(s.wall)), m.answers.to_string()),
            None => ("-".into(), "-".into(), "-".into()),
        };
        table.push(vec![
            edges_n.to_string(),
            mem.rows.to_string(),
            f3(ms(mem.wall)),
            f3(ms(spill.wall)),
            spill.spill_partitions.to_string(),
            tc_answers,
            tc_mem_ms,
            tc_spill_ms,
        ]);

        let _ = write!(
            json,
            "    {{\"edges\": {edges_n},\n      \"join\": {{\"rows\": {}, \
             \"t_q_mem_ms\": {:.3}, \"t_q_spill_ms\": {:.3}, \
             \"spill_partitions\": {}, \"spill_bytes\": {}, \"identical\": true}}",
            mem.rows,
            ms(mem.wall),
            ms(spill.wall),
            spill.spill_partitions,
            spill.spill_bytes,
        );
        if let Some((m, s)) = &tc {
            let _ = write!(
                json,
                ",\n      \"tc\": {{\"answers\": {}, \"t_eval_mem_ms\": {:.3}, \
                 \"t_eval_spill_ms\": {:.3}, \"spill_partitions\": {}, \
                 \"sort_runs\": {}, \"identical\": true}}",
                m.answers,
                ms(m.wall),
                ms(s.wall),
                s.spill_partitions,
                s.sort_runs,
            );
        }
        if !par.is_empty() {
            let _ = write!(json, ",\n      \"parallel\": [");
            for (j, (w, r)) in par.iter().enumerate() {
                let _ = write!(
                    json,
                    "{}{{\"workers\": {w}, \"t_eval_ms\": {:.3}}}",
                    if j == 0 { "" } else { ", " },
                    ms(r.wall)
                );
            }
            let _ = write!(json, "]");
        }
        if let Some((small, large)) = &buf {
            let _ = write!(
                json,
                ",\n      \"buffer\": {{\"hot_hit_rate_32_frames\": {:.4}, \
                 \"overall_hit_rate_32_frames\": {:.4}, \
                 \"hot_hit_rate_2048_frames\": {:.4}, \
                 \"overall_hit_rate_2048_frames\": {:.4}}}",
                small.hot_hit_rate,
                small.overall_hit_rate,
                large.hot_hit_rate,
                large.overall_hit_rate
            );
        }
        let _ = write!(
            json,
            "\n    }}{}\n",
            if i + 1 < tiers.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"skipped_tiers\": {:?}\n}}\n",
        skipped.as_slice()
    );

    print_table(
        &format!(
            "Scaled workload: join t_q and closure t_eval (ms), in-memory vs. \
             {} KiB budget ({cores} host cores)",
            SPILL_BUDGET >> 10
        ),
        &[
            "edges",
            "join rows",
            "t_q mem",
            "t_q spill",
            "parts",
            "answers",
            "t_eval mem",
            "t_eval spill",
        ],
        &table,
    );
    if !skipped.is_empty() {
        println!(
            "Skipped tiers {skipped:?}: above SCALE_MAX_EDGES={cap} \
             (set SCALE_MAX_EDGES=10000000 for the full sweep)."
        );
    }
    println!(
        "Every budgeted run is asserted to spill (exec.spill_partitions > 0) and \
         to produce output identical to the unbounded run."
    );

    // Skew check: a power-law self-join concentrates one hub-heavy
    // partition; the spilled result must still match in-memory exactly.
    // 2×10^4 edges keeps the hub-squared join output near 10^6 rows.
    let skew_edges = scaled_power_law(20_000, 1 << 20, SEED);
    let skew_mem = run_join(&skew_edges, None, false);
    // Smaller budget to match the smaller build side (~600 KiB).
    let skew_spill = run_join(&skew_edges, Some(128 << 10), false);
    assert!(skew_spill.spill_partitions > 0, "skewed join must spill");
    assert_eq!(
        (skew_mem.rows, skew_mem.hash),
        (skew_spill.rows, skew_spill.hash),
        "skewed spilled join diverged from in-memory"
    );
    println!(
        "Power-law skew check: {} join rows, {} spill partitions, identical output.",
        skew_mem.rows, skew_spill.spill_partitions
    );

    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => println!("Wrote BENCH_scale.json."),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }
}
