//! Figure 9 — Test 2: dictionary read time `t_read` versus the total
//! number of derived predicates in the Stored D/KB, `P_s`.
//!
//! Paper shape: with indexes on the dictionary relations, `t_read` is
//! insensitive to `P_s` for a fixed number of relevant predicates `P_dr`.

use crate::experiments::min_of;
use crate::{f3, ms, print_table};
use hornlog::types::AttrType;
use km::{Session, StoredDkb};
use std::collections::BTreeSet;
use std::time::Instant;

pub const P_S: &[usize] = &[50, 200, 800];
pub const P_DR: &[usize] = &[1, 4, 10];

/// A session whose intensional dictionary registers `p_s` derived
/// predicates `pred0..`.
pub fn dict_session(p_s: usize) -> Session {
    let mut s = Session::with_defaults().expect("session");
    for i in 0..p_s {
        let stored: StoredDkb = s.stored().clone();
        stored
            .register_derived(
                s.backend_mut(),
                &format!("pred{i}"),
                &[AttrType::Sym, AttrType::Sym],
            )
            .expect("register");
    }
    s
}

/// Time one dictionary read of `p_dr` predicates.
pub fn read_once(s: &mut Session, p_dr: usize) -> std::time::Duration {
    let preds: BTreeSet<String> = (0..p_dr).map(|i| format!("pred{i}")).collect();
    let stored = s.stored().clone();
    let start = Instant::now();
    let dict = stored
        .read_idb_dictionary(s.backend_mut(), &preds)
        .expect("read");
    let elapsed = start.elapsed();
    assert_eq!(dict.len(), p_dr);
    elapsed
}

pub fn run() {
    let mut rows = Vec::new();
    for &p_s in P_S {
        let mut s = dict_session(p_s);
        let mut cells = vec![p_s.to_string()];
        for &p_dr in P_DR {
            let t = min_of(9, || read_once(&mut s, p_dr));
            cells.push(f3(ms(t)));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 9: t_read (ms) vs total derived predicates P_s",
        &["P_s", "P_dr=1", "P_dr=4", "P_dr=10"],
        &rows,
    );
    println!("Paper shape: flat in P_s (indexed dictionary relations).");
}
