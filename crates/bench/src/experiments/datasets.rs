//! Extra experiment (beyond the paper): the ancestor query across all
//! four base-relation families of §5.2 at comparable sizes. The paper
//! runs its execution tests on trees only, noting "the results will
//! obviously be different for other queries and data types" — this sweep
//! quantifies that remark on our substrate.

use crate::experiments::min_of;
use crate::{edges_to_rows, f3, ms, print_table};
use km::session::{binary_sym, Session, SessionConfig};
use workload::graphs;

fn session_with(edges: &workload::Edges, optimize: bool) -> Session {
    let mut s = Session::new(SessionConfig {
        optimize,
        ..SessionConfig::default()
    })
    .expect("session");
    s.define_base("edge", &binary_sym()).expect("base");
    s.db_execute("CREATE INDEX edge_c0 ON edge (c0)")
        .expect("index");
    s.load_facts("edge", edges_to_rows(edges)).expect("facts");
    s.load_rules(&workload::ancestor_program("edge"))
        .expect("rules");
    s
}

pub fn run() {
    // ~500-tuple relations from each family; bound query from a fixed root.
    let cases: Vec<(&str, workload::Edges, String)> = vec![
        ("lists", graphs::lists(25, 21), "\"L0_0\"".to_string()),
        ("binary tree", graphs::full_binary_tree(9), "n1".to_string()),
        (
            "layered DAG",
            graphs::layered_dag(6, 20, 5, 7),
            "d0_0".to_string(),
        ),
        (
            "cyclic digraph",
            graphs::cyclic_digraph(5, 20, 400, 7),
            "c0_0".to_string(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, edges, root) in &cases {
        let mut plain = session_with(edges, false);
        let mut magic = session_with(edges, true);
        let query = format!("?- anc({root}, W).");
        let c_plain = plain.compile(&query).expect("compile");
        let c_magic = magic.compile(&query).expect("compile");
        let t_plain = min_of(3, || plain.execute(&c_plain).expect("run").t_execute);
        let (answers, t_magic) = {
            let r = magic.execute(&c_magic).expect("run");
            let t = min_of(2, || magic.execute(&c_magic).expect("run").t_execute).min(r.t_execute);
            (r.rows.len(), t)
        };
        rows.push(vec![
            name.to_string(),
            edges.len().to_string(),
            answers.to_string(),
            f3(ms(t_plain)),
            f3(ms(t_magic)),
        ]);
    }
    print_table(
        "Extra: ancestor t_e (ms) across base-relation families (~500 tuples)",
        &["family", "tuples", "answers", "plain", "magic"],
        &rows,
    );
    println!(
        "Beyond the paper: quantifies §5.3.1.2's remark that results differ \
         across data types — cyclic data maximizes closure size, lists \
         minimize it."
    );
}
