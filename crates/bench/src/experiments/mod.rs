//! One module per paper table/figure. Each exposes `run()`, which prints
//! the regenerated rows in the shape the paper reports.

pub mod chaos;
pub mod concurrency;
pub mod datasets;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod optimizer;
pub mod optimizers;
pub mod parallel;
pub mod prepared;
pub mod scale;
pub mod table4;
pub mod table5;
pub mod table8;
pub mod trace;
pub mod wal;

use std::time::Duration;

/// Run `f` `n` times and keep the smallest duration it reports — the
/// standard way to strip scheduler noise from a deterministic measurement.
pub fn min_of(n: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..n.max(1)).map(|_| f()).min().expect("n >= 1")
}

/// All experiment ids in paper order.
pub const ALL: &[(&str, fn())] = &[
    ("fig7", fig7::run),
    ("fig8", fig8::run),
    ("fig9", fig9::run),
    ("fig10", fig10::run),
    ("table4", table4::run),
    ("fig11", fig11::run),
    ("fig12", fig12::run),
    ("table5", table5::run),
    ("fig13", fig13::run),
    ("fig14", fig14::run),
    ("fig15", fig15::run),
    ("table8", table8::run),
    ("wal", wal::run),
    ("datasets", datasets::run),
    ("optimizer", optimizer::run),
    ("optimizers", optimizers::run),
    ("prepared", prepared::run),
    ("parallel", parallel::run),
    ("scale", scale::run),
    ("trace", trace::run),
    ("chaos", chaos::run),
    ("concurrency", concurrency::run),
];
