//! Table 8 — Test 9: breakdown of the stored-D/KB update time into its
//! three components, for a large (R_w = 36) and a tiny (R_w = 1)
//! workspace against an R_s = 189 stored rule base.
//!
//! Paper shape: extracting the relevant rules (`t_u1`) dominates — 42%
//! for the 36-rule workspace and 81% for the single-rule workspace — while
//! storing the source form contributes little.

use crate::{chain_session_configured, pct, print_table};
use km::session::{Session, SessionConfig};
use km::UpdateTimings;
use workload::rules::chain_pred;

const CHAIN_LEN: usize = 9;
const CHAINS: usize = 21; // R_s = 189

fn base_session() -> Session {
    chain_session_configured(CHAINS, CHAIN_LEN, SessionConfig::default()).expect("session")
}

fn run_update(r_w: usize) -> UpdateTimings {
    let mut s = base_session();
    for i in 0..r_w {
        // Each new rule hangs off a stored chain so extraction has work.
        s.load_rules(&format!(
            "w{i}(X, Y) :- {}(X, Y).\n",
            chain_pred(i % CHAINS, 0)
        ))
        .expect("load");
    }
    s.commit_workspace().expect("update")
}

pub fn run() {
    let mut rows = Vec::new();
    for r_w in [36usize, 1] {
        let t = run_update(r_w);
        rows.push(vec![
            t.tc_edges.to_string(),
            r_w.to_string(),
            (CHAINS * CHAIN_LEN).to_string(),
            pct(t.t_extract, t.total),
            pct(t.t_tc, t.total),
            pct(t.t_compiled_store, t.total),
            pct(t.t_source_store, t.total),
            crate::f3(crate::ms(t.total)),
        ]);
    }
    print_table(
        "Table 8: breakdown of D/KB update time",
        &[
            "TC edges",
            "R_w",
            "R_s",
            "t_extract(u1)",
            "t_tc",
            "t_compiled(u2)",
            "t_source(u3)",
            "total(ms)",
        ],
        &rows,
    );
    println!(
        "Paper shape: extraction (t_u1) significant — 42% at R_w=36, 81% at R_w=1; \
         source-form storage (t_u3) a small share. Our in-process engine makes \
         extraction far cheaper than the paper's disk DBMS, muting t_u1's share; \
         t_u3 stays small as reported."
    );
}
