//! WAL-overhead ablation on the Figure 15 update sweep: the same
//! single-rule update measured with durability off (the paper's
//! configuration) and on (every commit write-ahead logged and forced),
//! across the stored-rule-base sizes of Figure 15.
//!
//! Not a paper figure — the testbed machine had no durability story — but
//! it prices the crash-safety this reproduction adds: the ratio column is
//! the durability tax on `t_u`, and the traffic columns show how much log
//! is written and then checkpointed away per commit.

use crate::{chain_session_configured, f3, ms, print_table};
use km::session::{Session, SessionConfig};
use std::time::Duration;
use workload::rules::chain_pred;

const CHAIN_LEN: usize = 9;
const CHAINS: &[usize] = &[1, 5, 10, 21]; // R_s = 9, 45, 90, 189

fn session_with_chains(chains: usize, durability: bool) -> Session {
    chain_session_configured(
        chains,
        CHAIN_LEN,
        SessionConfig {
            durability,
            ..SessionConfig::default()
        },
    )
    .expect("session")
}

/// Time one single-rule update; also report the WAL traffic it generated.
fn one_update(chains: usize, durability: bool) -> (Duration, u64, u64) {
    let mut s = session_with_chains(chains, durability);
    let before = s.engine().stats().disk;
    s.load_rules(&format!("newp(X, Y) :- {}(X, Y).\n", chain_pred(0, 0)))
        .expect("load");
    let t = s.commit_workspace().expect("update");
    let after = s.engine().stats().disk;
    (
        t.total,
        after.wal_records - before.wal_records,
        after.wal_bytes - before.wal_bytes,
    )
}

pub fn run() {
    let mut rows = Vec::new();
    for &chains in CHAINS {
        let r_s = chains * CHAIN_LEN;
        let (off, _, _) = (0..3).map(|_| one_update(chains, false)).min().unwrap();
        let (on, recs, bytes) = (0..3).map(|_| one_update(chains, true)).min().unwrap();
        rows.push(vec![
            r_s.to_string(),
            f3(ms(off)),
            f3(ms(on)),
            format!("{:.2}x", on.as_secs_f64() / off.as_secs_f64().max(1e-9)),
            recs.to_string(),
            format!("{:.1}", bytes as f64 / 1024.0),
        ]);
    }
    print_table(
        "WAL ablation: single-rule update t_u (ms) vs R_s, durability off/on",
        &[
            "R_s",
            "wal off",
            "wal on",
            "ratio",
            "wal records",
            "wal KiB",
        ],
        &rows,
    );
    println!(
        "The overhead is flat in R_s: the log holds page images of the commit's \
         write set (dictionaries + one rule), not the whole rule base."
    );
}
