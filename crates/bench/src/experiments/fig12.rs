//! Figure 12 — Test 5: naive versus semi-naive LFP evaluation.
//!
//! Paper shape: semi-naive is 2.5-3x faster than naive on the ancestor
//! query over tree data, because naive recomputes previously derived
//! tuples every iteration.

use crate::experiments::min_of;
use crate::{f3, ms, print_table, tree_session};
use km::LfpStrategy;
use workload::graphs::{subtree_edges, tree_node_at_level};

const DEPTH: u32 = 9;

pub fn run() {
    let d_tot = subtree_edges(DEPTH, 1);
    let mut naive_s = tree_session(DEPTH, false, LfpStrategy::Naive).expect("session");
    let mut semi_s = tree_session(DEPTH, false, LfpStrategy::SemiNaive).expect("session");
    let mut rows = Vec::new();
    for level in [1u32, 2, 3, 5, 7] {
        let query = format!("?- anc({}, W).", tree_node_at_level(level));
        let c_naive = naive_s.compile(&query).expect("compile");
        let c_semi = semi_s.compile(&query).expect("compile");
        let t_naive = min_of(3, || naive_s.execute(&c_naive).expect("run").t_execute);
        let t_semi = min_of(3, || semi_s.execute(&c_semi).expect("run").t_execute);
        rows.push(vec![
            format!(
                "{:.1}%",
                100.0 * subtree_edges(DEPTH, level) as f64 / d_tot as f64
            ),
            f3(ms(t_naive)),
            f3(ms(t_semi)),
            format!("{:.2}x", t_naive.as_secs_f64() / t_semi.as_secs_f64()),
        ]);
    }
    print_table(
        &format!("Figure 12: naive vs semi-naive t_e (ms), depth-{DEPTH} tree"),
        &["D_rel/D_tot", "naive", "semi-naive", "speedup"],
        &rows,
    );
    println!("Paper shape: semi-naive 2.5-3x faster across the sweep.");
}
