//! Figure 15 — Test 8: stored-D/KB update time `t_u` versus the total
//! number of stored rules `R_s`, with and without the compiled rule
//! storage structure.
//!
//! Paper shape: updates are almost an order of magnitude faster without
//! compiled-form storage (only the source rows are written), and `t_u` is
//! relatively insensitive to `R_s` (the incremental transitive closure
//! touches only the affected portion).

use crate::{chain_session_configured, f3, ms, print_table};
use km::session::{Session, SessionConfig};
use std::time::Duration;
use workload::rules::chain_pred;

const CHAIN_LEN: usize = 9;
const CHAINS: &[usize] = &[1, 5, 10, 21]; // R_s = 9, 45, 90, 189

/// Build a session with `chains` stored chains, honoring the
/// compiled-storage switch.
fn session_with_chains(chains: usize, compiled: bool) -> Session {
    chain_session_configured(
        chains,
        CHAIN_LEN,
        SessionConfig {
            compiled_storage: compiled,
            ..SessionConfig::default()
        },
    )
    .expect("session")
}

/// Time one single-rule update against a fresh session.
fn one_update(chains: usize, compiled: bool) -> Duration {
    let mut s = session_with_chains(chains, compiled);
    // The new rule hangs off the first stored chain, so extraction and the
    // incremental closure have real work to do.
    s.load_rules(&format!("newp(X, Y) :- {}(X, Y).\n", chain_pred(0, 0)))
        .expect("load");
    let t = s.commit_workspace().expect("update");
    t.total
}

pub fn run() {
    let mut rows = Vec::new();
    for &chains in CHAINS {
        let r_s = chains * CHAIN_LEN;
        let with = (0..3).map(|_| one_update(chains, true)).min().unwrap();
        let without = (0..3).map(|_| one_update(chains, false)).min().unwrap();
        rows.push(vec![
            r_s.to_string(),
            f3(ms(with)),
            f3(ms(without)),
            format!(
                "{:.1}x",
                with.as_secs_f64() / without.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "Figure 15: single-rule update time t_u (ms) vs R_s",
        &["R_s", "compiled storage", "source only", "ratio"],
        &rows,
    );
    println!(
        "Paper shape: ~an order of magnitude cheaper without compiled storage; \
         both curves flat in R_s."
    );
}
