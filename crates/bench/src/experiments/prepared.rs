//! Prepared-statement ablation — the Figure 11 tree workload evaluated with
//! the embedded-SQL loop (`SessionConfig::prepared_sql`) on and off.
//!
//! The paper's Run Time Library compiles every embedded SQL statement once
//! and re-executes the compiled form each LFP iteration; the unprepared
//! path re-parses and re-plans the same strings every iteration instead.
//! This experiment reports the wall-time difference, proves the answers are
//! identical, and shows the plan-cache counters (statements compile once
//! per LFP call, then hit the cache).
//!
//! Besides the printed table, it writes `BENCH_lfp.json` to the current
//! directory: the per-workload LFP breakdown (`t_eval_rhs`,
//! `t_termination`, `t_temp_tables`) in machine-readable form for CI
//! trend-tracking.

use crate::{f3, ms, print_table, tree_session_configured};
use km::session::{QueryResult, Session, SessionConfig};
use km::{LfpBreakdown, LfpStrategy};
use rdbms::Value;
use std::fmt::Write as _;
use std::time::Duration;

struct Run {
    wall: Duration,
    breakdown: LfpBreakdown,
    rows: Vec<Vec<Value>>,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    tuples_scanned: u64,
    index_probes: u64,
    parse_ms: f64,
    plan_ms: f64,
}

/// Execute the compiled query `n` times on one session and keep the run
/// with the smallest wall time (same noise-stripping as
/// [`crate::experiments::min_of`], but retaining the full result).
fn best_run(session: &mut Session, n: usize, query: &str) -> Run {
    let compiled = session.compile(query).expect("compile");
    let mut best: Option<QueryResult> = None;
    for _ in 0..n.max(1) {
        let r = session.execute(&compiled).expect("execute");
        if best.as_ref().map_or(true, |b| r.t_execute < b.t_execute) {
            best = Some(r);
        }
    }
    let best = best.expect("n >= 1");
    let stats = session.engine().stats();
    let mut rows = best.rows;
    rows.sort();
    Run {
        wall: best.t_execute,
        breakdown: best.outcome.breakdown,
        rows,
        plan_cache_hits: stats.exec.plan_cache_hits,
        plan_cache_misses: stats.exec.plan_cache_misses,
        tuples_scanned: stats.exec.tuples_scanned,
        index_probes: stats.exec.index_probes,
        parse_ms: stats.exec.parse_ns as f64 / 1e6,
        plan_ms: stats.exec.plan_ns as f64 / 1e6,
    }
}

fn measure(depth: u32, strategy: LfpStrategy, prepared_sql: bool) -> Run {
    let mut session = tree_session_configured(
        depth,
        SessionConfig {
            prepared_sql,
            strategy,
            ..SessionConfig::default()
        },
    )
    .expect("session");
    best_run(&mut session, 3, "?- anc(n1, W).")
}

fn strategy_name(s: LfpStrategy) -> &'static str {
    match s {
        LfpStrategy::Naive => "naive",
        LfpStrategy::SemiNaive => "semi_naive",
    }
}

fn json_side(out: &mut String, key: &str, r: &Run) {
    let b = &r.breakdown;
    let _ = write!(
        out,
        concat!(
            "      \"{}\": {{\"wall_ms\": {:.3}, \"t_eval_rhs_ms\": {:.3}, ",
            "\"t_termination_ms\": {:.3}, \"t_temp_tables_ms\": {:.3}, ",
            "\"iterations\": {}, \"tuples_produced\": {}, ",
            "\"plan_cache_hits\": {}, \"plan_cache_misses\": {}, ",
            "\"tuples_scanned\": {}, \"index_probes\": {}, ",
            "\"parse_ms\": {:.3}, \"plan_ms\": {:.3}}}"
        ),
        key,
        ms(r.wall),
        ms(b.t_eval_rhs),
        ms(b.t_termination),
        ms(b.t_temp_tables),
        b.iterations,
        b.tuples_produced,
        r.plan_cache_hits,
        r.plan_cache_misses,
        r.tuples_scanned,
        r.index_probes,
        r.parse_ms,
        r.plan_ms,
    );
}

pub fn run() {
    // Figure 11's tree workload at several sizes; naive is bounded at
    // depth 8 (it recomputes the whole closure each iteration).
    let workloads: &[(u32, LfpStrategy)] = &[
        (8, LfpStrategy::Naive),
        (8, LfpStrategy::SemiNaive),
        (10, LfpStrategy::SemiNaive),
    ];

    let mut rows = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"prepared\",\n  \"workloads\": [\n");
    for (i, &(depth, strategy)) in workloads.iter().enumerate() {
        let off = measure(depth, strategy, false);
        let on = measure(depth, strategy, true);
        assert_eq!(
            off.rows, on.rows,
            "prepared and unprepared answers must be identical"
        );
        assert_eq!(off.breakdown.tuples_produced, on.breakdown.tuples_produced);
        let name = format!("fig11-tree-d{depth}-{}", strategy_name(strategy));
        rows.push(vec![
            name.clone(),
            off.rows.len().to_string(),
            f3(ms(off.wall)),
            f3(ms(on.wall)),
            format!("{:.2}x", ms(off.wall) / ms(on.wall).max(1e-9)),
            format!("{}/{}", on.plan_cache_hits, on.plan_cache_misses),
        ]);
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"depth\": {depth}, \"strategy\": \"{}\",\n",
            strategy_name(strategy)
        );
        json_side(&mut json, "unprepared", &off);
        json.push_str(",\n");
        json_side(&mut json, "prepared", &on);
        let _ = write!(
            json,
            ",\n      \"speedup\": {:.3}\n    }}{}\n",
            ms(off.wall) / ms(on.wall).max(1e-9),
            if i + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    print_table(
        "Prepared-statement ablation: LFP wall time, prepared SQL off vs on",
        &[
            "workload",
            "answers",
            "unprepared(ms)",
            "prepared(ms)",
            "speedup",
            "hits/misses",
        ],
        &rows,
    );
    println!("hits/misses are the prepared run's plan-cache counters: each LFP");
    println!("statement is planned once (a miss), then re-executed from cache.");

    match std::fs::write("BENCH_lfp.json", &json) {
        Ok(()) => println!("Wrote BENCH_lfp.json."),
        Err(e) => eprintln!("could not write BENCH_lfp.json: {e}"),
    }
}
