//! Figure 7 — Test 1: `t_extract` versus the total number of stored rules
//! `R_s`, for queries with `R_rs` ∈ {1, 7, 20} relevant rules.
//!
//! Paper shape: with the compiled rule storage (`reachablepreds` + indexes),
//! `t_extract` is *insensitive to `R_s`* and grows only with `R_rs`.

use crate::experiments::min_of;
use crate::{chain_session, f3, ms, print_table};
use workload::rules::chain_query;

const CHAIN_LEN: usize = 20;
const R_RS: &[usize] = &[1, 7, 20];
const CHAINS: &[usize] = &[2, 5, 10, 20]; // R_s = chains * 20

pub fn run() {
    let mut rows = Vec::new();
    for &chains in CHAINS {
        let r_s = chains * CHAIN_LEN;
        let mut cells = vec![r_s.to_string()];
        let mut session = chain_session(chains, CHAIN_LEN).expect("session");
        for &r_rs in R_RS {
            // Querying position CHAIN_LEN - r_rs makes exactly r_rs rules
            // relevant.
            let query = chain_query(0, CHAIN_LEN - r_rs, "a");
            let t = min_of(5, || {
                let compiled = session.compile(&query).expect("compile");
                assert_eq!(compiled.relevant_rules, r_rs, "R_rs check");
                compiled.timings.t_extract
            });
            cells.push(f3(ms(t)));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 7: t_extract (ms) vs total stored rules R_s",
        &["R_s", "R_rs=1", "R_rs=7", "R_rs=20"],
        &rows,
    );
    println!("Paper shape: flat in R_s (indexed compiled storage); grows with R_rs.");
}
