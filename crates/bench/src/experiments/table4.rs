//! Table 4 — Test 3: relative contributions of the D/KB query compilation
//! components as the number of relevant stored rules grows.
//!
//! Paper shape: as `R_rs` grows from 1 to 20, the share of `t_extract`
//! rises (the paper reports 25% → 67%), squeezing the other components.

use crate::{chain_session, pct, print_table};
use km::CompileTimings;
use workload::rules::chain_query;

const CHAIN_LEN: usize = 20;
const CHAINS: usize = 10; // R_s = 200
const R_RS: &[usize] = &[1, 7, 20];

pub fn run() {
    let mut session = chain_session(CHAINS, CHAIN_LEN).expect("session");
    let mut rows = Vec::new();
    for &r_rs in R_RS {
        let query = chain_query(0, CHAIN_LEN - r_rs, "a");
        // Best-of-5 on total time; keep that run's breakdown.
        let mut best: Option<CompileTimings> = None;
        for _ in 0..5 {
            let tm = session.compile(&query).expect("compile").timings;
            if best.is_none_or(|b| tm.total < b.total) {
                best = Some(tm);
            }
        }
        let tm = best.expect("at least one run");
        rows.push(vec![
            r_rs.to_string(),
            pct(tm.t_setup, tm.total),
            pct(tm.t_read, tm.total),
            pct(tm.t_extract, tm.total),
            pct(tm.t_eol, tm.total),
            pct(tm.t_gen, tm.total),
            crate::f3(crate::ms(tm.total)),
        ]);
    }
    print_table(
        "Table 4: compilation time breakdown vs R_rs (R_s = 200)",
        &[
            "R_rs",
            "t_setup",
            "t_read",
            "t_extract",
            "t_eol",
            "t_gen",
            "total(ms)",
        ],
        &rows,
    );
    println!("Paper shape: t_extract share grows with R_rs (25% -> 67%).");
}
