//! `chaos` — the 500-episode torture run behind the governor/recovery
//! robustness claims.
//!
//! Each episode seeds a deterministic schedule that arms one perturbation
//! (a seeded disk fault, a cancellation raised at a WAL write point, an
//! evaluation budget, an engine row budget, or a fault+budget combination),
//! drives a durable evaluation-plus-commit into it at parallelism 1 or 4,
//! then requires the engine to come back: recovery succeeds,
//! `verify_integrity` passes, the stored D/KB is fully pre- or fully
//! post-commit, and a clean re-run returns byte-identical answers to a
//! pristine reference session. The aggregate (and the hard zeros for
//! integrity failures and answer mismatches) is written to
//! `BENCH_chaos.json`.
//!
//! Reproduce any single episode with its seed: the schedule is a pure
//! function of the episode index (see `tests/chaos.rs` for the same
//! machinery in unit-test form).

use crate::print_table;
use km::session::{binary_sym, Session, SessionConfig};
use rdbms::metrics::json_escape;
use rdbms::{Engine, FaultInjector, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

const EPISODES: u64 = 500;

const TABLES: &[&str] = &[
    "idb_relname",
    "idb_column",
    "edb_relname",
    "edb_column",
    "rulesource",
    "reachablepreds",
    "parent",
    "edge",
];

const QUERY: &str = "?- anc(A, B).";

const KINDS: &[&str] = &[
    "disk-fault",
    "cancel-at-write",
    "fact-budget",
    "iteration-budget",
    "row-budget",
    "fault+budget",
];

/// Logical content of the whole database, keyed by table, rows sorted.
type DbState = BTreeMap<String, Vec<Vec<Value>>>;
/// Reference answer rows plus the post-commit database state.
type Reference = (Vec<Vec<Value>>, DbState);

fn dump(db: &mut Engine) -> DbState {
    let mut out = BTreeMap::new();
    for table in TABLES {
        if db.has_table(table) {
            let mut rows = db.scan_all(table).unwrap();
            rows.sort();
            out.insert(table.to_string(), rows);
        }
    }
    out
}

fn chaos_session(parallelism: usize, config: SessionConfig) -> Session {
    let mut s = Session::new(SessionConfig {
        durability: true,
        parallelism,
        ..config
    })
    .unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    let edges = workload::cyclic_digraph(2, 6, 4, 11);
    s.load_facts("parent", workload::edges_to_rows(&edges))
        .unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
         edge(e0, e1).\n\
         edge(e1, e2).\n",
    )
    .unwrap();
    s
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Default, Clone)]
struct KindStats {
    episodes: u64,
    eval_errors: u64,
    commit_errors: u64,
    crashes: u64,
    recoveries: u64,
    cancellations: u64,
    retried_commits: u64,
    integrity_failures: u64,
    mismatches: u64,
}

/// Run one seeded episode, folding its outcome into the stats bucket of
/// whichever perturbation the schedule draws; returns that bucket's index.
fn episode(seed: u64, refs: &BTreeMap<usize, Reference>, stats: &mut [KindStats]) -> usize {
    let mut rng = Rng::new(seed);
    let parallelism = if rng.pick(2) == 0 { 1 } else { 4 };
    let (expected, post) = &refs[&parallelism];

    let mut config = SessionConfig::default();
    let kind = rng.pick(KINDS.len() as u64);
    let st = &mut stats[kind as usize];
    if kind == 2 || kind == 5 {
        config.max_derived_facts = Some(1 + rng.pick(30));
    }
    if kind == 3 {
        config.max_iterations = Some(1 + rng.pick(3));
    }
    let mut s = chaos_session(parallelism, config);
    s.engine_mut().flush().unwrap();
    let pre = dump(s.engine_mut());
    match kind {
        0 | 5 => s
            .engine_mut()
            .set_fault_injector(FaultInjector::from_seed(rng.next())),
        1 => {
            let handle = s.engine().cancel_handle();
            let at = rng.pick(24);
            s.engine_mut()
                .set_fault_injector(FaultInjector::new().cancel_at_write(at, handle));
        }
        4 => s.engine_mut().set_row_budget(Some(1 + rng.pick(200))),
        _ => {}
    }

    st.episodes += 1;
    if s.query(QUERY).is_err() {
        st.eval_errors += 1;
    }
    let commit = s.commit_workspace();
    if commit.is_err() {
        st.commit_errors += 1;
    }
    if s.engine().cancel_requested() {
        st.cancellations += 1;
    }

    if s.engine().crashed() {
        st.crashes += 1;
        match s.recover() {
            Ok(_) => st.recoveries += 1,
            Err(e) => {
                // `recover()` verifies integrity by default; a failure
                // here is exactly the torn-state bug the harness hunts.
                st.integrity_failures += 1;
                eprintln!("seed {seed}: recovery failed: {e}");
                return kind as usize;
            }
        }
    }
    s.engine_mut().clear_fault_injector();
    s.engine_mut().set_row_budget(None);
    s.engine_mut().reset_cancel();
    s.config.max_derived_facts = None;
    s.config.max_iterations = None;

    if let Err(e) = s.verify_integrity() {
        st.integrity_failures += 1;
        eprintln!("seed {seed}: integrity: {e}");
        return kind as usize;
    }
    let state = dump(s.engine_mut());
    if state == pre {
        st.retried_commits += 1;
        if s.commit_workspace().is_err() || dump(s.engine_mut()) != *post {
            st.mismatches += 1;
            eprintln!("seed {seed}: retried commit did not reach post-state");
            return kind as usize;
        }
    } else if state != *post {
        st.mismatches += 1;
        eprintln!("seed {seed}: stored D/KB is neither pre- nor post-commit");
        return kind as usize;
    }
    match s.query(QUERY) {
        Ok((_, r)) if r.rows == *expected => {}
        _ => {
            st.mismatches += 1;
            eprintln!("seed {seed}: clean re-run diverged from reference");
        }
    }
    kind as usize
}

pub fn run() {
    println!("== chaos: seeded fault/cancellation/budget torture run ==\n");
    let start = Instant::now();
    let refs: BTreeMap<usize, _> = [1usize, 4]
        .iter()
        .map(|&p| {
            let mut s = chaos_session(p, SessionConfig::default());
            let (_, r) = s.query(QUERY).unwrap();
            s.commit_workspace().unwrap();
            let d = dump(s.engine_mut());
            (p, (r.rows, d))
        })
        .collect();

    let mut stats: Vec<KindStats> = vec![KindStats::default(); KINDS.len()];
    for seed in 0..EPISODES {
        episode(seed, &refs, &mut stats);
    }
    let wall = start.elapsed();

    let rows: Vec<Vec<String>> = KINDS
        .iter()
        .zip(&stats)
        .map(|(k, s)| {
            vec![
                k.to_string(),
                s.episodes.to_string(),
                s.eval_errors.to_string(),
                s.commit_errors.to_string(),
                s.crashes.to_string(),
                s.recoveries.to_string(),
                s.cancellations.to_string(),
                s.retried_commits.to_string(),
                s.integrity_failures.to_string(),
                s.mismatches.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("{EPISODES} episodes in {:.1}s", wall.as_secs_f64()),
        &[
            "perturbation",
            "episodes",
            "eval_err",
            "commit_err",
            "crashes",
            "recovered",
            "canceled",
            "retried",
            "integrity_fail",
            "mismatch",
        ],
        &rows,
    );

    let integrity_failures: u64 = stats.iter().map(|s| s.integrity_failures).sum();
    let mismatches: u64 = stats.iter().map(|s| s.mismatches).sum();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"chaos\",");
    let _ = writeln!(json, "  \"episodes\": {EPISODES},");
    let _ = writeln!(json, "  \"wall_seconds\": {:.3},", wall.as_secs_f64());
    let _ = writeln!(json, "  \"integrity_failures\": {integrity_failures},");
    let _ = writeln!(json, "  \"mismatches\": {mismatches},");
    let _ = writeln!(json, "  \"perturbations\": [");
    for (i, (k, s)) in KINDS.iter().zip(&stats).enumerate() {
        let comma = if i + 1 < KINDS.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"episodes\": {}, \"eval_errors\": {}, \
             \"commit_errors\": {}, \"crashes\": {}, \"recoveries\": {}, \
             \"cancellations\": {}, \"retried_commits\": {}, \
             \"integrity_failures\": {}, \"mismatches\": {}}}{comma}",
            json_escape(k),
            s.episodes,
            s.eval_errors,
            s.commit_errors,
            s.crashes,
            s.recoveries,
            s.cancellations,
            s.retried_commits,
            s.integrity_failures,
            s.mismatches,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match std::fs::write("BENCH_chaos.json", &json) {
        Ok(()) => println!("\nwrote BENCH_chaos.json"),
        Err(e) => println!("\ncould not write BENCH_chaos.json: {e}"),
    }

    assert_eq!(integrity_failures, 0, "chaos run found integrity failures");
    assert_eq!(mismatches, 0, "chaos run found answer/state mismatches");
    println!(
        "\nall {EPISODES} episodes recovered with intact integrity and \
         byte-identical clean re-runs"
    );
}
