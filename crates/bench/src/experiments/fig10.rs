//! Figure 10 — Test 2 (continued): `t_read` versus the number of derived
//! predicates relevant to the query, `P_dr`, at three dictionary sizes.
//!
//! Paper shape: `t_read` increases with `P_dr` (join selectivity of the
//! dictionary query) and the three `P_s` curves coincide.

use crate::experiments::fig9::{dict_session, read_once};
use crate::experiments::min_of;
use crate::{f3, ms, print_table};

const P_S: &[usize] = &[50, 200, 800];
const P_DR: &[usize] = &[1, 2, 4, 8, 16, 32];

pub fn run() {
    let mut sessions: Vec<_> = P_S.iter().map(|&p| dict_session(p)).collect();
    let mut rows = Vec::new();
    for &p_dr in P_DR {
        let mut cells = vec![p_dr.to_string()];
        for s in &mut sessions {
            let t = min_of(9, || read_once(s, p_dr));
            cells.push(f3(ms(t)));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 10: t_read (ms) vs relevant derived predicates P_dr",
        &["P_dr", "P_s=50", "P_s=200", "P_s=800"],
        &rows,
    );
    println!("Paper shape: increasing in P_dr; insensitive to P_s.");
}
