//! # dkbms-bench — experiment harness
//!
//! Shared scaffolding for regenerating every table and figure of the
//! paper's evaluation section (§5). Each experiment lives in
//! [`experiments`] and is driven by the `experiments` binary; Criterion
//! micro-benchmarks live under `benches/`.

pub mod experiments;

use km::session::{binary_sym, Session, SessionConfig};
use km::{KmError, LfpStrategy};
use rdbms::Value;
use std::time::Duration;

pub use workload::edges_to_rows;

/// A session holding a `parent` base relation shaped as a full binary tree
/// of `depth` levels, with the ancestor rules in the workspace and an index
/// on `parent.c0` (the join column every rule uses).
pub fn tree_session(depth: u32, optimize: bool, strategy: LfpStrategy) -> Result<Session, KmError> {
    tree_session_configured(
        depth,
        SessionConfig {
            optimize,
            strategy,
            ..SessionConfig::default()
        },
    )
}

/// [`tree_session`] with an explicit configuration (the prepared-statement
/// ablation varies `prepared_sql`).
pub fn tree_session_configured(depth: u32, config: SessionConfig) -> Result<Session, KmError> {
    let mut s = Session::new(config)?;
    s.define_base("parent", &binary_sym())?;
    s.db_execute("CREATE INDEX parent_c0 ON parent (c0)")?;
    s.load_facts("parent", edges_to_rows(&workload::full_binary_tree(depth)))?;
    s.load_rules(&workload::ancestor_program("parent"))?;
    Ok(s)
}

/// A session whose Stored D/KB holds a [`workload::chain_rule_base`] of
/// `chains` × `chain_len` rules over a small `base` relation.
pub fn chain_session(chains: usize, chain_len: usize) -> Result<Session, KmError> {
    chain_session_configured(chains, chain_len, SessionConfig::default())
}

/// [`chain_session`] with an explicit configuration (the update
/// experiments vary `compiled_storage`).
pub fn chain_session_configured(
    chains: usize,
    chain_len: usize,
    config: SessionConfig,
) -> Result<Session, KmError> {
    let mut s = Session::new(config)?;
    s.define_base("base", &binary_sym())?;
    s.load_facts(
        "base",
        vec![
            vec![Value::from("a"), Value::from("b")],
            vec![Value::from("b"), Value::from("c")],
        ],
    )?;
    let program = workload::chain_rule_base(chains, chain_len, "base");
    for clause in &program.clauses {
        s.workspace_mut().add_clause(clause.clone());
    }
    s.commit_workspace()?;
    s.workspace_mut().clear();
    Ok(s)
}

/// Milliseconds as a float, for compact table output.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage of `whole`.
pub fn pct(part: Duration, whole: Duration) -> String {
    if whole.is_zero() {
        return "-".to_string();
    }
    format!("{:.0}%", 100.0 * part.as_secs_f64() / whole.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_session_answers_ancestor() {
        let mut s = tree_session(4, false, LfpStrategy::SemiNaive).unwrap();
        let (_, r) = s.query("?- anc(n1, W).").unwrap();
        // Root of a depth-4 tree has 14 descendants.
        assert_eq!(r.rows.len(), 14);
    }

    #[test]
    fn chain_session_stores_rules() {
        let mut s = chain_session(3, 4).unwrap();
        let compiled = s.compile(&workload::rules::chain_query(0, 0, "a")).unwrap();
        assert_eq!(compiled.relevant_rules, 4);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(
            pct(Duration::from_millis(25), Duration::from_millis(100)),
            "25%"
        );
        assert_eq!(pct(Duration::ZERO, Duration::ZERO), "-");
    }
}
