//! Quickstart: define a base relation, load facts, add Horn rules, and ask
//! a recursive query — the testbed's whole pipeline in thirty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use km::session::{binary_sym, Session, SessionConfig};
use km::LfpStrategy;
use rdbms::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A session = relational engine + stored D/KB + workspace.
    let mut session = Session::new(SessionConfig {
        optimize: true, // generalized magic sets
        strategy: LfpStrategy::SemiNaive,
        compiled_storage: true,
        special_tc: false,
        supplementary: false,
        durability: false,
        prepared_sql: true,
        parallelism: 0,
        ..SessionConfig::default()
    })?;

    // The extensional database: a parent relation.
    session.define_base("parent", &binary_sym())?;
    session.load_facts(
        "parent",
        [
            ("adam", "bob"),
            ("adam", "carol"),
            ("bob", "dave"),
            ("carol", "eve"),
            ("dave", "fred"),
        ]
        .iter()
        .map(|(a, b)| vec![Value::from(*a), Value::from(*b)])
        .collect(),
    )?;

    // The intensional database: ancestor as the least fixed point.
    session.load_rules(
        "ancestor(X, Y) :- parent(X, Y).\n\
         ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n",
    )?;

    // Compile + execute a query with a bound argument.
    let (compiled, result) = session.query("?- ancestor(adam, W).")?;
    println!(
        "compiled {} relevant rules in {:.2?} (magic sets: {})",
        compiled.relevant_rules, compiled.timings.total, compiled.optimized
    );
    println!("executed in {:.2?}:", result.t_execute);
    for row in &result.rows {
        println!("  ancestor(adam, {})", row[0]);
    }
    assert_eq!(result.rows.len(), 5);

    // A boolean (fully ground) query.
    let (_, yes) = session.query("?- ancestor(adam, fred).")?;
    println!("ancestor(adam, fred)? {}", !yes.rows.is_empty());
    Ok(())
}
