//! Genealogy: the paper's motivating workload at a realistic size.
//!
//! Builds a multi-generation family tree (a full binary "parent" tree),
//! defines ancestor, descendant and same-generation predicates, and
//! contrasts unoptimized evaluation with the generalized magic-sets
//! rewrite on a selective query — the heart of the paper's Test 7.
//!
//! ```text
//! cargo run --release --example genealogy
//! ```

use km::session::{binary_sym, Session, SessionConfig};
use km::LfpStrategy;
use rdbms::Value;
use workload::graphs::{full_binary_tree, subtree_edges, tree_node_at_level};

fn build_session(optimize: bool) -> Result<Session, Box<dyn std::error::Error>> {
    let mut s = Session::new(SessionConfig {
        optimize,
        strategy: LfpStrategy::SemiNaive,
        compiled_storage: true,
        special_tc: false,
        supplementary: false,
        durability: false,
        prepared_sql: true,
        parallelism: 0,
        ..SessionConfig::default()
    })?;
    s.define_base("parent", &binary_sym())?;
    let rows = full_binary_tree(10)
        .into_iter()
        .map(|(a, b)| vec![Value::from(a), Value::from(b)])
        .collect();
    s.load_facts("parent", rows)?;
    s.load_rules(
        "ancestor(X, Y) :- parent(X, Y).\n\
         ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n\
         sibling(X, Y) :- parent(P, X), parent(P, Y).\n\
         samegen(X, Y) :- sibling(X, Y).\n\
         samegen(X, Y) :- parent(A, X), parent(B, Y), samegen(A, B).\n",
    )?;
    Ok(s)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let family_size = subtree_edges(10, 1) + 1;
    println!("family tree: {family_size} people across 10 generations\n");

    // A selective ancestor query, with and without magic sets.
    let patriarch = tree_node_at_level(7); // small subtree: low selectivity
    let query = format!("?- ancestor({patriarch}, W).");
    for optimize in [false, true] {
        let mut s = build_session(optimize)?;
        let (compiled, result) = s.query(&query)?;
        println!(
            "{:<12} {:>3} descendants of {patriarch}: t_e = {:>9.2?} \
             ({} tuples derived, {} LFP iterations)",
            if optimize {
                "magic sets"
            } else {
                "unoptimized"
            },
            result.rows.len(),
            result.t_execute,
            result.outcome.breakdown.tuples_produced,
            result.outcome.breakdown.iterations,
        );
        assert_eq!(compiled.relevant_rules, 2);
        assert_eq!(result.rows.len(), subtree_edges(10, 7) as usize);
    }

    // Same-generation: a mutually joined recursion (the sg clique).
    let mut s = build_session(true)?;
    let cousin_query = format!("?- samegen({}, W).", tree_node_at_level(4));
    let (compiled, result) = s.query(&cousin_query)?;
    println!(
        "\nsame-generation of {}: {} people (compiled {} rules, t_e = {:.2?})",
        tree_node_at_level(4),
        result.rows.len(),
        compiled.relevant_rules,
        result.t_execute
    );
    // Level 4 of a binary tree holds 8 nodes, all in the same generation.
    assert_eq!(result.rows.len(), 8);

    // A boolean kinship check.
    let (_, related) = s.query(&format!("?- ancestor(n1, {}).", tree_node_at_level(10)))?;
    println!(
        "is n1 an ancestor of {}? {}",
        tree_node_at_level(10),
        !related.rows.is_empty()
    );
    Ok(())
}
