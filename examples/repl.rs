//! The testbed User Interface: an interactive session against the
//! D/KBMS, mirroring the workflow of §3.1 — enter rules and facts into the
//! workspace, query them, and commit the workspace to the Stored D/KB.
//!
//! ```text
//! cargo run --example repl
//! dkb> ancestor(X, Y) :- parent(X, Y).
//! dkb> ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//! dkb> parent(adam, bob).
//! dkb> parent(bob, carol).
//! dkb> ?- ancestor(adam, W).
//! dkb> :commit
//! dkb> :help
//! ```

use km::session::{Session, SessionConfig};
use km::LfpStrategy;
use std::io::{self, BufRead, Write};

const HELP: &str = "\
Enter Horn clauses (terminated by '.') to add them to the workspace,
or a query starting with '?-'. Commands:
  :help            show this help
  :list            show workspace rules and facts
  :commit          commit workspace rules to the stored D/KB
  :clear           clear the workspace
  :magic on|off|supp    toggle the optimizer (supp = supplementary variant)
  :strategy naive|seminaive   choose the LFP strategy
  :explain <query> show the compiled program for a query
  :save <path>     snapshot the stored D/KB to a file
  :open <path>     replace the session with a saved snapshot
  :prepare <name> <query>     precompile a query under a name
  :run <name>      execute a prepared query (recompiles if invalidated)
  :stats           engine statistics
  :quit            exit";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new(SessionConfig::default())?;
    println!("D/KBMS testbed. Type :help for commands.");
    let stdin = io::stdin();
    let mut line = String::new();
    loop {
        print!("dkb> ");
        io::stdout().flush()?;
        line.clear();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if let Some(cmd) = input.strip_prefix(':') {
            match handle_command(&mut session, cmd) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if input.starts_with("?-") {
            match session.query(input) {
                Ok((compiled, result)) => {
                    println!(
                        "-- {} rules relevant, compiled in {:.2?}, executed in {:.2?}",
                        compiled.relevant_rules, compiled.timings.total, result.t_execute
                    );
                    if result.rows.is_empty() {
                        println!("no");
                    }
                    for row in result.rows.iter().take(50) {
                        let cells: Vec<String> = compiled
                            .answer_vars
                            .iter()
                            .zip(row)
                            .map(|(v, val)| format!("{v} = {val}"))
                            .collect();
                        println!("{}", cells.join(", "));
                    }
                    if result.rows.len() > 50 {
                        println!("... ({} rows total)", result.rows.len());
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match session.load_rules(input) {
            Ok(()) => println!("ok"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

/// Returns Ok(true) to quit.
fn handle_command(session: &mut Session, cmd: &str) -> Result<bool, Box<dyn std::error::Error>> {
    let mut parts = cmd.split_whitespace();
    match (parts.next().unwrap_or(""), parts.next()) {
        ("help", _) => println!("{HELP}"),
        ("quit", _) | ("exit", _) => return Ok(true),
        ("list", _) => {
            print!("{}", session.workspace().rules());
            print!("{}", session.workspace().facts());
            println!(
                "-- {} rules, {} facts in the workspace",
                session.workspace().rule_count(),
                session.workspace().fact_count()
            );
        }
        ("commit", _) => {
            let t = session.commit_workspace()?;
            println!(
                "stored {} rules ({} closure edges added) in {:.2?}",
                t.rules_stored, t.reachable_added, t.total
            );
        }
        ("clear", _) => {
            session.workspace_mut().clear();
            println!("workspace cleared");
        }
        ("explain", _) => {
            let query = cmd.trim_start_matches("explain").trim();
            if query.is_empty() {
                println!("usage: :explain ?- p(a, W).");
            } else {
                for line in session.explain(query)? {
                    println!("{line}");
                }
            }
        }
        ("magic", Some("on")) => {
            session.config.optimize = true;
            println!("magic sets: on");
        }
        ("magic", Some("off")) => {
            session.config.optimize = false;
            session.config.supplementary = false;
            println!("magic sets: off");
        }
        ("magic", Some("supp")) => {
            session.config.optimize = true;
            session.config.supplementary = true;
            println!("magic sets: on (supplementary)");
        }
        ("strategy", Some("naive")) => {
            session.config.strategy = LfpStrategy::Naive;
            println!("strategy: naive");
        }
        ("strategy", Some("seminaive")) => {
            session.config.strategy = LfpStrategy::SemiNaive;
            println!("strategy: semi-naive");
        }
        ("prepare", Some(name)) => {
            let rest = cmd
                .trim_start_matches("prepare")
                .trim_start()
                .trim_start_matches(name)
                .trim();
            if rest.is_empty() {
                println!("usage: :prepare myq ?- p(a, W).");
            } else {
                session.prepare(name, rest)?;
                println!("prepared '{name}'");
            }
        }
        ("run", Some(name)) => {
            let was_valid = session.prepared_is_valid(name);
            let r = session.execute_prepared(name)?;
            if was_valid == Some(false) {
                println!("-- plan was invalidated by an update; recompiled");
            }
            println!("-- {} row(s) in {:.2?}", r.rows.len(), r.t_execute);
            for row in r.rows.iter().take(50) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join(", "));
            }
        }
        ("save", Some(_)) => {
            let path = cmd.trim_start_matches("save").trim();
            session.save(path)?;
            println!("saved to {path}");
        }
        ("open", Some(_)) => {
            let path = cmd.trim_start_matches("open").trim();
            let config = session.config;
            *session = Session::open(path, config)?;
            println!("opened {path}");
        }
        ("stats", _) => {
            let st = session.engine().stats();
            println!(
                "statements: {}  tables +{}/-{}  scans: {} tuples  \
                 index probes: {}  buffer hits/misses: {}/{}  pages r/w: {}/{}",
                st.statements,
                st.tables_created,
                st.tables_dropped,
                st.exec.tuples_scanned,
                st.exec.index_probes,
                st.buffer.hits,
                st.buffer.misses,
                st.disk.pages_read,
                st.disk.pages_written,
            );
        }
        (other, _) => println!("unknown command :{other} (try :help)"),
    }
    Ok(false)
}
