//! Access control: a policy engine exercising every extension at once —
//! stratified negation (deny rules), the specialized transitive-closure
//! operator (role hierarchies), and precompiled queries with update
//! invalidation (the hot access-check path).
//!
//! ```text
//! cargo run --example access_control
//! ```

use km::session::{binary_sym, Session, SessionConfig};
use km::LfpStrategy;
use rdbms::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new(SessionConfig {
        optimize: false, // negation rules: the optimizer would decline anyway
        strategy: LfpStrategy::SemiNaive,
        compiled_storage: true,
        special_tc: true, // role-hierarchy closure uses the TC operator
        supplementary: false,
        durability: false,
        prepared_sql: true,
        parallelism: 0,
        ..SessionConfig::default()
    })?;

    // Extensional data: role inheritance, grants, denials, memberships.
    s.define_base("subrole", &binary_sym())?; // (role, parent role)
    s.define_base("grants", &binary_sym())?; // (role, resource)
    s.define_base("denied", &binary_sym())?; // (user, resource)
    s.define_base("member", &binary_sym())?; // (user, role)
    s.load_facts(
        "subrole",
        [
            ("intern", "engineer"),
            ("engineer", "staff"),
            ("staff", "employee"),
            ("contractor", "employee"),
            ("lead", "engineer"),
        ]
        .iter()
        .map(|(a, b)| vec![Value::from(*a), Value::from(*b)])
        .collect(),
    )?;
    s.load_facts(
        "grants",
        [
            ("employee", "cafeteria"),
            ("staff", "wiki"),
            ("engineer", "repo"),
            ("lead", "deploys"),
        ]
        .iter()
        .map(|(a, b)| vec![Value::from(*a), Value::from(*b)])
        .collect(),
    )?;
    s.load_facts(
        "member",
        [("ann", "lead"), ("bob", "intern"), ("cay", "contractor")]
            .iter()
            .map(|(a, b)| vec![Value::from(*a), Value::from(*b)])
            .collect(),
    )?;
    s.load_facts(
        "denied",
        vec![vec![Value::from("bob"), Value::from("repo")]],
    )?;

    // Policy: role inheritance is transitive (a TC clique — the engine's
    // specialized operator evaluates it); access = membership + inherited
    // grant, minus explicit denials (stratified negation).
    s.load_rules(
        "inherits(R, P) :- subrole(R, P).\n\
         inherits(R, P) :- subrole(R, Q), inherits(Q, P).\n\
         roleof(U, R) :- member(U, R).\n\
         roleof(U, P) :- member(U, R), inherits(R, P).\n\
         entitled(U, X) :- roleof(U, R), grants(R, X).\n\
         access(U, X) :- entitled(U, X), not denied(U, X).\n",
    )?;

    // The hot path is precompiled once per user.
    for user in ["ann", "bob", "cay"] {
        s.prepare(user, &format!("?- access({user}, X)."))?;
    }
    for user in ["ann", "bob", "cay"] {
        let r = s.execute_prepared(user)?;
        let resources: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        println!("{user:<4} can access: {}", resources.join(", "));
    }

    // bob is an intern (engineer -> staff -> employee) but denied the repo.
    let bob = s.execute_prepared("bob")?;
    assert!(!bob.rows.contains(&vec![Value::from("repo")]), "deny wins");
    assert!(bob.rows.contains(&vec![Value::from("wiki")]));

    // Policy change: interns lose staff inheritance. Committing the new
    // rule base invalidates every prepared query that depends on it.
    println!("\npolicy update: contractors gain wiki access");
    s.load_rules("entitled(U, wiki) :- roleof(U, contractor).\n")?;
    s.commit_workspace()?;
    assert_eq!(s.prepared_is_valid("cay"), Some(false), "plan invalidated");
    let cay = s.execute_prepared("cay")?; // transparently recompiled
    println!(
        "cay  can access: {}",
        cay.rows
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert!(cay.rows.contains(&vec![Value::from("wiki")]));
    println!("(recompilations forced by updates: {})", s.recompilations());
    Ok(())
}
