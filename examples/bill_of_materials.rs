//! Bill of materials: the classic industrial D/KB workload (part
//! explosion and where-used analysis over a manufacturing assembly graph).
//!
//! The `subpart` base relation is a layered DAG — assemblies at the top,
//! raw parts at the bottom — and two recursive predicates answer the
//! questions a manufacturing system asks constantly:
//!
//! * `contains(A, P)` — every part transitively needed to build `A`;
//! * `whereused(P, A)` — every assembly transitively affected by `P`.
//!
//! ```text
//! cargo run --release --example bill_of_materials
//! ```

use km::session::{binary_sym, Session, SessionConfig};
use km::LfpStrategy;
use rdbms::Value;
use workload::graphs::layered_dag;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new(SessionConfig {
        optimize: true,
        strategy: LfpStrategy::SemiNaive,
        compiled_storage: true,
        special_tc: false,
        supplementary: false,
        durability: false,
        prepared_sql: true,
        parallelism: 0,
        ..SessionConfig::default()
    })?;

    // Assembly graph: 5 levels (finished goods -> raw materials), 8 items
    // per level, each item built from 3 items of the next level.
    let edges = layered_dag(5, 8, 3, 2026);
    println!(
        "assembly graph: {} direct-composition tuples across 5 levels",
        edges.len()
    );
    s.define_base("subpart", &binary_sym())?;
    s.load_facts(
        "subpart",
        edges
            .into_iter()
            .map(|(a, b)| vec![Value::from(a), Value::from(b)])
            .collect(),
    )?;
    // Index the part-explosion join column.
    s.db_execute("CREATE INDEX subpart_c0 ON subpart (c0)")?;

    s.load_rules(
        "contains(A, P) :- subpart(A, P).\n\
         contains(A, P) :- subpart(A, X), contains(X, P).\n\
         whereused(P, A) :- subpart(A, P).\n\
         whereused(P, A) :- subpart(X, P), whereused(X, A).\n\
         rawmaterial(A, P) :- contains(A, P), leaf(P).\n",
    )?;
    // Leaves: bottom-layer items, loaded as workspace facts.
    for i in 0..8 {
        s.load_rules(&format!("leaf(d4_{i}).\n"))?;
    }

    // Part explosion for one finished good.
    let (compiled, explosion) = s.query("?- contains(d0_0, P).")?;
    println!(
        "\npart explosion of d0_0: {} parts (compiled {} rules, t_e = {:.2?})",
        explosion.rows.len(),
        compiled.relevant_rules,
        explosion.t_execute
    );

    // Raw materials only (joins the recursion with the leaf facts).
    let (_, raw) = s.query("?- rawmaterial(d0_0, P).")?;
    println!("raw materials of d0_0: {} distinct items", raw.rows.len());
    for row in raw.rows.iter().take(5) {
        println!("  needs {}", row[0]);
    }
    assert!(raw
        .rows
        .iter()
        .all(|r| { r[0].as_str().expect("symbol").starts_with("d4_") }));

    // Where-used: which finished goods does a raw material affect?
    let (_, used) = s.query("?- whereused(d4_0, A).")?;
    println!(
        "\nwhere-used of raw material d4_0: {} assemblies affected",
        used.rows.len()
    );

    // Change-impact as a boolean check: does d4_0 end up in d0_7?
    let (_, hit) = s.query("?- whereused(d4_0, d0_7).")?;
    println!(
        "does d4_0 affect finished good d0_7? {}",
        !hit.rows.is_empty()
    );
    Ok(())
}
