//! Corporate policy: the rule-base *management* scenario the paper's
//! update experiments model. Policies are committed to the Stored D/KB in
//! stages; later workspace rules build on stored ones, and the incremental
//! transitive-closure update keeps compilation fast throughout.
//!
//! ```text
//! cargo run --example corporate_policy
//! ```

use km::session::{binary_sym, Session, SessionConfig};
use rdbms::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new(SessionConfig::default())?;

    // Extensional data: the org chart and department assignments.
    s.define_base("manages", &binary_sym())?;
    s.load_facts(
        "manages",
        [
            ("ceo", "vp_eng"),
            ("ceo", "vp_sales"),
            ("vp_eng", "dir_platform"),
            ("vp_eng", "dir_apps"),
            ("dir_platform", "lead_db"),
            ("dir_apps", "lead_ui"),
            ("lead_db", "ann"),
            ("lead_db", "bob"),
            ("lead_ui", "carol"),
        ]
        .iter()
        .map(|(a, b)| vec![Value::from(*a), Value::from(*b)])
        .collect(),
    )?;

    // Stage 1: commit the base chain-of-command policy.
    s.load_rules(
        "above(X, Y) :- manages(X, Y).\n\
         above(X, Y) :- manages(X, Z), above(Z, Y).\n",
    )?;
    let t1 = s.commit_workspace()?;
    println!(
        "stage 1 committed: {} rules stored, {} closure edges, t_u = {:.2?}",
        t1.rules_stored, t1.reachable_added, t1.total
    );
    s.workspace_mut().clear();

    // Stage 2: approval policy building on the *stored* chain of command.
    // Compilation will pull the `above` rules out of the Stored D/KB.
    s.load_rules(
        "can_approve(X, Y) :- above(X, Y).\n\
         needs_signoff(X, Y) :- above(Y, X).\n",
    )?;
    let t2 = s.commit_workspace()?;
    println!(
        "stage 2 committed: {} rules stored, {} new closure edges, t_u = {:.2?} \
         (incremental: only the affected portion was re-closed)",
        t2.rules_stored, t2.reachable_added, t2.total
    );
    s.workspace_mut().clear();

    // Query purely against stored policy.
    let (compiled, result) = s.query("?- can_approve(W, ann).")?;
    println!(
        "\nwho can approve for ann? ({} relevant rules extracted from the stored D/KB)",
        compiled.relevant_rules
    );
    for row in &result.rows {
        println!("  {}", row[0]);
    }
    assert_eq!(result.rows.len(), 4, "ceo, vp_eng, dir_platform, lead_db");

    // A bad policy is rejected by the semantic checker before storage.
    s.load_rules("broken(X) :- undefined_relation(X).\n")?;
    match s.commit_workspace() {
        Err(e) => println!("\nbad policy rejected as expected: {e}"),
        Ok(_) => panic!("semantic checker should have rejected this"),
    }
    s.workspace_mut().clear();

    // The stored D/KB is unchanged; queries still work.
    let (_, again) = s.query("?- needs_signoff(carol, W).")?;
    println!(
        "carol needs signoff from {} people up the chain",
        again.rows.len()
    );
    Ok(())
}
