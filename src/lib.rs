//! # dkbms — a Data/Knowledge Base Management testbed
//!
//! A Rust reproduction of the D/KBMS testbed of Ramnarayan & Lu,
//! *"A Data/Knowledge Base Management Testbed and Experimental Results on
//! Data/Knowledge Base Query and Update Processing"* (SIGMOD 1988).
//!
//! The system is two-layered, exactly as in the paper:
//!
//! * the **Knowledge Manager** ([`km`]) compiles pure, function-free Horn
//!   clause queries into programs of SQL statements — via the Predicate
//!   Connection Graph, clique detection, the evaluation order list, type
//!   inference, and (optionally) the generalized magic-sets rewrite — and
//!   evaluates them bottom-up with naive or semi-naive LFP iteration;
//! * the **DBMS** ([`rdbms`]) is an in-process relational engine (slotted
//!   pages, buffer pool, hash indexes, SQL subset, cost-aware joins) that
//!   stores both the facts and the rules: rule source in `rulesource`, the
//!   compiled form in `reachablepreds` (the PCG's transitive closure).
//!
//! [`hornlog`] is the rule-language layer and [`workload`] generates the
//! paper's experiment inputs. See `examples/quickstart.rs` for the
//! five-minute tour and `crates/bench` for the reproduction of every table
//! and figure in the paper's evaluation.

pub use hornlog;
pub use km;
pub use rdbms;
pub use workload;

pub use km::session::{Session, SessionConfig};
pub use km::{KmError, LfpStrategy};
pub use rdbms::{Engine, Value};
