//! Tests of the specialized transitive-closure operator (paper conclusion
//! #8): correctness against the generic LFP loop, pattern-detection
//! boundaries, and the cost reduction it delivers.

use km::session::{binary_sym, Session, SessionConfig};
use rdbms::Value;
use workload::graphs;

fn session(edges: &[(String, String)], special_tc: bool, rules: &str) -> Session {
    let mut s = Session::new(SessionConfig {
        special_tc,
        ..SessionConfig::default()
    })
    .unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    s.load_facts(
        "edge",
        edges
            .iter()
            .map(|(a, b)| vec![Value::from(a.as_str()), Value::from(b.as_str())])
            .collect(),
    )
    .unwrap();
    s.load_rules(rules).unwrap();
    s
}

#[test]
fn tc_operator_matches_generic_loop_on_all_graph_families() {
    let rules = workload::ancestor_program("edge");
    for edges in [
        graphs::lists(2, 6),
        graphs::full_binary_tree(6),
        graphs::layered_dag(4, 5, 2, 3),
        graphs::cyclic_digraph(2, 4, 3, 8),
    ] {
        let mut generic = session(&edges, false, &rules);
        let mut special = session(&edges, true, &rules);
        let (_, r1) = generic.query("?- anc(V, W).").unwrap();
        let (_, r2) = special.query("?- anc(V, W).").unwrap();
        assert_eq!(r1.rows, r2.rows);
        // The fast path really engaged: one eval statement, one iteration.
        assert_eq!(r2.outcome.breakdown.iterations, 1);
        assert!(
            r2.outcome.breakdown.n_eval_stmts < r1.outcome.breakdown.n_eval_stmts,
            "TC operator issues fewer statements"
        );
    }
}

#[test]
fn tc_operator_applies_to_right_linear_and_nonlinear_variants() {
    let edges = graphs::lists(1, 8);
    for rules in [
        workload::rules::ancestor_right_linear("edge"),
        workload::rules::ancestor_nonlinear("edge"),
    ] {
        let mut special = session(&edges, true, &rules);
        let (_, r) = special.query("?- anc(V, W).").unwrap();
        assert_eq!(r.rows.len(), 7 * 8 / 2, "C(8,2) chain pairs");
        assert_eq!(r.outcome.breakdown.iterations, 1, "fast path used");
    }
}

#[test]
fn non_tc_cliques_fall_back_to_the_generic_loop() {
    // Same-generation is recursive but not a transitive closure.
    let mut s = Session::new(SessionConfig {
        special_tc: true,
        ..SessionConfig::default()
    })
    .unwrap();
    s.define_base("up", &binary_sym()).unwrap();
    s.define_base("down", &binary_sym()).unwrap();
    s.define_base("flat", &binary_sym()).unwrap();
    let tree = graphs::full_binary_tree(4);
    s.load_facts(
        "up",
        tree.iter()
            .map(|(p, c)| vec![Value::from(c.as_str()), Value::from(p.as_str())])
            .collect(),
    )
    .unwrap();
    s.load_facts(
        "down",
        tree.iter()
            .map(|(p, c)| vec![Value::from(p.as_str()), Value::from(c.as_str())])
            .collect(),
    )
    .unwrap();
    s.load_facts("flat", vec![vec![Value::from("n1"), Value::from("n1")]])
        .unwrap();
    s.load_rules(workload::same_generation()).unwrap();
    let (_, r) = s.query("?- sg(n8, W).").unwrap();
    assert_eq!(r.rows.len(), 8, "level-4 nodes share a generation");
    assert!(r.outcome.breakdown.iterations > 1, "generic LFP loop ran");
}

#[test]
fn seeded_clique_predicates_disable_the_fast_path() {
    let edges = graphs::lists(1, 5);
    let mut s = session(&edges, true, &workload::ancestor_program("edge"));
    // A workspace fact seeds anc directly: plain TC would miss tuples
    // derived through the seed, so the runtime must fall back.
    s.load_rules("anc(extra, \"L0_0\").\n").unwrap();
    let (_, r) = s.query("?- anc(extra, W).").unwrap();
    assert_eq!(r.rows, vec![vec![Value::from("L0_0")]]);
    assert!(r.outcome.breakdown.iterations > 1, "fell back to the loop");
}

#[test]
fn tc_operator_respects_bound_queries() {
    // The fast path computes the full closure; the query node then
    // restricts — answers must match the generic configuration.
    let edges = graphs::full_binary_tree(5);
    let rules = workload::ancestor_program("edge");
    let mut generic = session(&edges, false, &rules);
    let mut special = session(&edges, true, &rules);
    for q in ["?- anc(n2, W).", "?- anc(W, n9).", "?- anc(n1, n31)."] {
        let (_, r1) = generic.query(q).unwrap();
        let (_, r2) = special.query(q).unwrap();
        assert_eq!(r1.rows, r2.rows, "query {q}");
    }
}

#[test]
fn tc_operator_with_extra_filters_in_rules_falls_back() {
    // A constant in the recursive rule breaks the pure-TC pattern.
    let edges = graphs::lists(1, 5);
    let rules = "anc(X, Y) :- edge(X, Y).\n\
                 anc(X, Y) :- edge(X, Z), anc(Z, Y), edge(Z, Y).\n";
    let mut s = session(&edges, true, rules);
    let (_, r) = s.query("?- anc(V, W).").unwrap();
    // Body has three atoms: not the TC shape; must still terminate and be
    // correct. The recursive rule requires edge(Z, Y), so it only adds
    // distance-2 pairs: 4 edges + 3 two-hop pairs on the 5-node chain.
    assert_eq!(r.rows.len(), 7);
    assert!(r.outcome.breakdown.iterations >= 1);
}
