//! Integration tests of the Stored D/KB lifecycle: staged commits, the
//! compiled-versus-source storage configurations, workspace/stored rule
//! interplay, and the invariants the update algorithm must maintain.

use km::session::{binary_sym, Session, SessionConfig};
use km::{KmError, LfpStrategy};
use rdbms::Value;

use workload::chain_facts as chain_rows;

fn base_session(config: SessionConfig) -> Session {
    let mut s = Session::new(config).unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_facts("parent", chain_rows(10)).unwrap();
    s
}

#[test]
fn staged_commits_compose() {
    let mut s = base_session(SessionConfig::default());
    // Stage 1.
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    // Stage 2 builds on stage 1.
    s.load_rules("kin(X, Y) :- anc(X, Y).\nkin(X, Y) :- anc(Y, X).\n")
        .unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    // Stage 3 builds on stage 2.
    s.load_rules("related(X) :- kin(a0, X).\n").unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();

    let (compiled, result) = s.query("?- related(W).").unwrap();
    assert_eq!(compiled.relevant_rules, 5, "all three stages extracted");
    assert_eq!(
        result.rows.len(),
        9,
        "a0 is kin to everyone else on the chain"
    );
}

#[test]
fn closure_growth_is_monotone_across_commits() {
    let mut s = base_session(SessionConfig::default());
    let mut previous = 0;
    for stage in 0..4 {
        let body = if stage == 0 {
            "parent".to_string()
        } else {
            format!("lvl{}", stage - 1)
        };
        s.load_rules(&format!("lvl{stage}(X, Y) :- {body}(X, Y).\n"))
            .unwrap();
        s.commit_workspace().unwrap();
        s.workspace_mut().clear();
        let stored = s.stored().clone();
        let count = stored.reachable_count(s.engine_mut()).unwrap();
        assert!(count > previous, "closure grows on stage {stage}");
        previous = count;
    }
    // lvl3 must transitively reach parent.
    let stored = s.stored().clone();
    let reach = stored
        .reachable_from(s.engine_mut(), &["lvl3".to_string()].into())
        .unwrap();
    assert!(reach.contains("parent"));
    assert!(reach.contains("lvl0"));
}

#[test]
fn source_only_configuration_still_answers_queries() {
    let mut s = base_session(SessionConfig {
        compiled_storage: false,
        ..SessionConfig::default()
    });
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    let (compiled, result) = s.query("?- anc(a0, W).").unwrap();
    assert_eq!(
        compiled.relevant_rules, 2,
        "iterative extraction finds the rules"
    );
    assert_eq!(result.rows.len(), 9);
}

#[test]
fn compiled_and_source_configurations_agree() {
    for compiled in [true, false] {
        let mut s = base_session(SessionConfig {
            compiled_storage: compiled,
            ..SessionConfig::default()
        });
        s.load_rules(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
             tip(X) :- anc(a0, X).\n",
        )
        .unwrap();
        s.commit_workspace().unwrap();
        s.workspace_mut().clear();
        let (_, result) = s.query("?- tip(W).").unwrap();
        assert_eq!(result.rows.len(), 9, "compiled_storage={compiled}");
    }
}

#[test]
fn workspace_shadows_nothing_stored_rules_accumulate() {
    let mut s = base_session(SessionConfig::default());
    s.load_rules("anc(X, Y) :- parent(X, Y).\n").unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    // The recursive rule lives only in the workspace: both must be used.
    s.load_rules("anc(X, Y) :- parent(X, Z), anc(Z, Y).\n")
        .unwrap();
    let (compiled, result) = s.query("?- anc(a0, W).").unwrap();
    assert_eq!(
        compiled.relevant_rules, 2,
        "one stored + one workspace rule"
    );
    assert_eq!(result.rows.len(), 9);
}

#[test]
fn duplicate_commit_does_not_duplicate_extraction() {
    let mut s = base_session(SessionConfig::default());
    s.load_rules("anc(X, Y) :- parent(X, Y).\n").unwrap();
    s.commit_workspace().unwrap();
    // Workspace still holds the rule; commit again, then query.
    let t = s.commit_workspace().unwrap();
    assert_eq!(t.rules_stored, 0);
    s.workspace_mut().clear();
    let (compiled, _) = s.query("?- anc(a0, W).").unwrap();
    assert_eq!(compiled.relevant_rules, 1, "rule stored exactly once");
}

#[test]
fn update_timings_report_phases() {
    let mut s = base_session(SessionConfig::default());
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    let t = s.commit_workspace().unwrap();
    assert_eq!(t.rules_stored, 2);
    assert!(t.tc_edges >= 2);
    assert!(t.total >= t.t_extract);
    assert!(t.total >= t.t_source_store);
}

#[test]
fn naive_strategy_works_against_stored_rules() {
    let mut s = base_session(SessionConfig {
        strategy: LfpStrategy::Naive,
        ..SessionConfig::default()
    });
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    let (_, result) = s.query("?- anc(a3, W).").unwrap();
    assert_eq!(result.rows.len(), 6);
}

#[test]
fn type_conflicting_commit_is_rejected_whole() {
    let mut s = base_session(SessionConfig::default());
    s.load_rules(
        "ok(X, Y) :- parent(X, Y).\n\
         bad(X) :- parent(X, 42).\n",
    )
    .unwrap();
    assert!(matches!(s.commit_workspace(), Err(KmError::Type(_))));
    // Nothing was stored — the update aborted before the write phase.
    let stored = s.stored().clone();
    assert_eq!(stored.rule_count(s.engine_mut()).unwrap(), 0);
}

#[test]
fn query_sees_base_data_loaded_after_commit() {
    let mut s = base_session(SessionConfig::default());
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    let (_, before) = s.query("?- anc(a0, W).").unwrap();
    // New facts arrive later; compiled queries against the same session
    // re-read the base relation at execution time.
    s.load_facts("parent", vec![vec![Value::from("a9"), Value::from("a10")]])
        .unwrap();
    let (_, after) = s.query("?- anc(a0, W).").unwrap();
    assert_eq!(after.rows.len(), before.rows.len() + 1);
}
