//! Parallel evaluation must be invisible in the results: for randomized
//! graph workloads, every LFP evaluator (naive/semi-naive × prepared SQL
//! on/off) and the specialized transitive-closure operator must produce
//! byte-identical answers and final relation contents at 2/4/8 workers as
//! at parallelism 1. Only wall time may differ.

use km::session::{binary_sym, Session, SessionConfig};
use km::LfpStrategy;
use proptest::prelude::*;
use rdbms::Value;
use std::collections::BTreeMap;

fn node_name(n: u8) -> String {
    format!("v{n}")
}

fn session_for(edges: &[(u8, u8)], config: SessionConfig) -> Session {
    let mut s = Session::new(config).unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    let rows: Vec<Vec<Value>> = edges
        .iter()
        .map(|&(a, b)| vec![Value::from(node_name(a)), Value::from(node_name(b))])
        .collect();
    s.load_facts("edge", rows).unwrap();
    s.load_rules(&workload::ancestor_program("edge")).unwrap();
    s
}

/// The logical content of every table left in the engine, each sorted:
/// parallel execution may permute physical row order inside a statement's
/// input, so logical (set) equality is the contract — and the answer rows
/// the runtime returns are sorted already, making those byte-comparable.
fn dump(s: &mut Session) -> BTreeMap<String, Vec<Vec<Value>>> {
    let db = s.engine_mut();
    let mut out = BTreeMap::new();
    for name in db.table_names() {
        let mut rows = db.execute(&format!("SELECT * FROM {name}")).unwrap().rows;
        rows.sort();
        out.insert(name, rows);
    }
    out
}

type RunResult = (Vec<Vec<Value>>, BTreeMap<String, Vec<Vec<Value>>>);

fn run_once(edges: &[(u8, u8)], config: SessionConfig, query: &str) -> RunResult {
    let mut s = session_for(edges, config);
    let (_, result) = s.query(query).unwrap();
    (result.rows, dump(&mut s))
}

/// The five evaluation configurations under test: the four generic LFP
/// evaluators plus the specialized transitive-closure operator.
fn configs() -> Vec<(&'static str, SessionConfig)> {
    let mut out = Vec::new();
    for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
        for prepared_sql in [false, true] {
            let name = match (strategy, prepared_sql) {
                (LfpStrategy::Naive, false) => "naive",
                (LfpStrategy::Naive, true) => "naive-prepared",
                (LfpStrategy::SemiNaive, false) => "semi-naive",
                (LfpStrategy::SemiNaive, true) => "semi-naive-prepared",
            };
            out.push((
                name,
                SessionConfig {
                    strategy,
                    prepared_sql,
                    ..SessionConfig::default()
                },
            ));
        }
    }
    out.push((
        "special-tc",
        SessionConfig {
            special_tc: true,
            ..SessionConfig::default()
        },
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Answers and final relation contents at 2/4/8 workers equal the
    /// serial run's, for every evaluator, on random graphs.
    #[test]
    fn parallel_matches_serial(
        edges in prop::collection::vec((0u8..10, 0u8..10), 0..25),
        start in 0u8..10,
    ) {
        let query = format!("?- anc({}, W).", node_name(start));
        for (name, config) in configs() {
            let serial = run_once(&edges, SessionConfig { parallelism: 1, ..config }, &query);
            for workers in [2usize, 4, 8] {
                let par = run_once(
                    &edges,
                    SessionConfig { parallelism: workers, ..config },
                    &query,
                );
                prop_assert_eq!(
                    &par.0, &serial.0,
                    "{} answers diverge at {} workers", name, workers
                );
                prop_assert_eq!(
                    &par.1, &serial.1,
                    "{} relation contents diverge at {} workers", name, workers
                );
            }
        }
    }

    /// The all-free query (larger intermediate relations, more partition
    /// work) is deterministic too, with magic sets enabled as well.
    #[test]
    fn parallel_matches_serial_all_free(
        edges in prop::collection::vec((0u8..8, 0u8..8), 0..20),
    ) {
        for optimize in [false, true] {
            let config = SessionConfig { optimize, ..SessionConfig::default() };
            let serial = run_once(&edges, SessionConfig { parallelism: 1, ..config }, "?- anc(V, W).");
            for workers in [2usize, 4, 8] {
                let par = run_once(
                    &edges,
                    SessionConfig { parallelism: workers, ..config },
                    "?- anc(V, W).",
                );
                prop_assert_eq!(&par.0, &serial.0, "optimize={} workers={}", optimize, workers);
                prop_assert_eq!(&par.1, &serial.1, "optimize={} workers={}", optimize, workers);
            }
        }
    }
}
