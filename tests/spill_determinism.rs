//! Memory-bounded execution must be invisible in the results: Grace
//! hash joins, external merge-sorts, and spill-partitioned dedup must
//! produce byte-identical output (content *and* order) to the in-memory
//! operators, across randomized memory budgets, batch sizes, and
//! parallelism settings. A disk fault during a spill write must leave
//! the engine recoverable with no answer corruption.

use proptest::prelude::*;
use rdbms::{Engine, FaultInjector, SpillMode, Value};

/// The operator mix under test: hash join, external sort (ORDER BY),
/// dedup (DISTINCT), and the EXCEPT anti-set — every executor path with
/// a spill variant.
const QUERIES: &[&str] = &[
    "SELECT a.c0, b.c1 FROM edge a, edge b WHERE a.c1 = b.c0",
    "SELECT * FROM edge ORDER BY c1, c0",
    "SELECT DISTINCT c1 FROM edge",
    "SELECT c0 FROM edge EXCEPT SELECT c1 FROM edge",
];

fn engine_with(edges: &[(i64, i64)]) -> Engine {
    let mut db = Engine::new();
    db.execute("CREATE TABLE edge (c0 int, c1 int)").unwrap();
    let rows: Vec<Vec<Value>> = edges
        .iter()
        .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
        .collect();
    db.insert_rows("edge", rows).unwrap();
    db
}

fn arb_edges() -> impl Strategy<Value = Vec<(i64, i64)>> {
    // Small key domain so joins produce real multi-match groups and
    // DISTINCT/EXCEPT see genuine duplicates.
    prop::collection::vec((0i64..40, 0i64..40), 20..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forced spilling (every join/sort/dedup goes through the disk
    /// paths) returns exactly what the in-memory engine returns, at any
    /// batch size and parallelism.
    #[test]
    fn forced_spill_is_byte_identical(
        edges in arb_edges(),
        batch in 1usize..300,
        workers_ix in 0usize..3,
    ) {
        let workers = [1usize, 2, 4][workers_ix];
        let mut plain = engine_with(&edges);
        let mut spilly = engine_with(&edges);
        spilly.set_spill_mode(SpillMode::Forced);
        spilly.set_batch_rows(batch);
        spilly.set_parallelism(workers);
        for q in QUERIES {
            let expect = plain.execute(q).unwrap().rows;
            let got = spilly.execute(q).unwrap().rows;
            prop_assert_eq!(&got, &expect, "query {} diverged under forced spill", q);
        }
        // The forced engine really exercised the spill machinery.
        let s = spilly.stats().exec;
        prop_assert!(
            s.spill_partitions > 0 && s.sort_runs > 0,
            "forced mode must spill (partitions={}, sort_runs={})",
            s.spill_partitions,
            s.sort_runs
        );
    }

    /// Under an arbitrary small memory budget with spilling enabled, no
    /// statement ever fails with a budget breach — operators spill
    /// instead — and answers still match the unbounded engine.
    #[test]
    fn random_budgets_spill_instead_of_failing(
        edges in arb_edges(),
        budget in 512u64..16_384,
        batch in 1usize..300,
        workers_ix in 0usize..3,
    ) {
        let workers = [1usize, 2, 4][workers_ix];
        let mut plain = engine_with(&edges);
        let mut bounded = engine_with(&edges);
        bounded.set_memory_budget(Some(budget));
        bounded.set_batch_rows(batch);
        bounded.set_parallelism(workers);
        for q in QUERIES {
            let expect = plain.execute(q).unwrap().rows;
            let got = bounded.execute(q).unwrap().rows;
            prop_assert_eq!(&got, &expect, "query {} diverged under budget {}", q, budget);
        }
    }

    /// With spilling disabled, the PR-5 contract still holds: a budget
    /// smaller than a join's build side fails with the typed breach
    /// error rather than spilling silently.
    #[test]
    fn disabled_spill_keeps_budget_errors(edges in arb_edges()) {
        let mut db = engine_with(&edges);
        db.set_spill_mode(SpillMode::Disabled);
        db.set_memory_budget(Some(64));
        let err = db.execute(QUERIES[0]).unwrap_err();
        prop_assert!(
            matches!(err, rdbms::DbError::Budget(_)),
            "expected DbError::Budget, got {:?}",
            err
        );
    }
}

/// Satellite: governed exits must not leak spill files. Whatever aborts
/// a spilling statement — cooperative cancellation armed at a spill
/// write point, a rows-budget breach, or a disk fault plus recovery —
/// the disk's live file-slot count must return to its pre-statement
/// baseline: every spill partition, sort run, and dedup scratch file is
/// destroyed or abandoned on the way out.
#[test]
fn aborted_spilling_statements_leak_no_spill_files() {
    let edges: Vec<(i64, i64)> = (0..400).map(|i| (i % 37, (i * 7) % 37)).collect();
    let expect = engine_with(&edges).execute(QUERIES[0]).unwrap().rows;

    // Cooperative cancellation fired by a spill write.
    {
        let mut db = engine_with(&edges);
        db.set_spill_mode(SpillMode::Forced);
        db.flush().unwrap();
        let baseline = db.disk_live_files();
        let handle = db.cancel_handle();
        db.set_fault_injector(FaultInjector::new().cancel_at_write(3, handle));
        assert!(
            db.execute(QUERIES[0]).is_err(),
            "cancel armed mid-spill must abort the statement"
        );
        db.clear_fault_injector();
        db.reset_cancel();
        assert_eq!(
            db.disk_live_files(),
            baseline,
            "cancellation abort leaked spill files"
        );
        // The engine keeps serving, and a clean spilling run tears all
        // its scratch files back down too.
        assert_eq!(db.execute(QUERIES[0]).unwrap().rows, expect);
        assert_eq!(
            db.disk_live_files(),
            baseline,
            "successful spilling statement leaked spill files"
        );
    }

    // Rows-budget breach while sort runs are already on disk.
    {
        let mut db = engine_with(&edges);
        db.set_spill_mode(SpillMode::Forced);
        db.set_row_budget(Some(450));
        db.flush().unwrap();
        let baseline = db.disk_live_files();
        let err = db.execute(QUERIES[1]).unwrap_err();
        assert!(
            matches!(err, rdbms::DbError::Budget(_)),
            "expected a budget breach, got {err:?}"
        );
        assert_eq!(
            db.disk_live_files(),
            baseline,
            "budget-breach abort leaked spill files"
        );
    }

    // Disk fault mid-spill, then recovery.
    {
        let mut db = engine_with(&edges);
        db.set_spill_mode(SpillMode::Forced);
        db.flush().unwrap();
        let baseline = db.disk_live_files();
        db.set_fault_injector(FaultInjector::new().fail_after_writes(2));
        assert!(db.execute(QUERIES[0]).is_err());
        db.clear_fault_injector();
        db.recover().unwrap();
        assert_eq!(
            db.disk_live_files(),
            baseline,
            "crash plus recovery leaked spill file slots"
        );
        assert_eq!(db.execute(QUERIES[0]).unwrap().rows, expect);
    }
}

/// A disk fault that fires mid-spill must fail the statement, leave the
/// engine recoverable, and not corrupt any table: after recovery the
/// same query returns exactly the clean answer.
#[test]
fn spill_write_fault_recovers_cleanly() {
    let edges: Vec<(i64, i64)> = (0..400).map(|i| (i % 37, (i * 7) % 37)).collect();
    let expect = engine_with(&edges).execute(QUERIES[0]).unwrap().rows;

    for fail_after in [0u64, 1, 2, 5] {
        let mut db = engine_with(&edges);
        db.set_spill_mode(SpillMode::Forced);
        // Flush so the only writes left are the spill writes themselves.
        db.flush().unwrap();
        db.set_fault_injector(FaultInjector::new().fail_after_writes(fail_after));
        let err = db.execute(QUERIES[0]);
        assert!(
            err.is_err(),
            "fault after {fail_after} writes should fail the spilling join"
        );
        db.clear_fault_injector();
        db.recover().unwrap();
        let got = db.execute(QUERIES[0]).unwrap().rows;
        assert_eq!(
            got, expect,
            "post-recovery answer diverged (fault at write {fail_after})"
        );
    }
}
