//! Integration tests of the DBMS layer through its public SQL interface,
//! including property tests comparing query results against an in-memory
//! reference evaluation.

use proptest::prelude::*;
use rdbms::{DbError, Engine, Value};

// ---------------------------------------------------------------------
// Scenario tests
// ---------------------------------------------------------------------

#[test]
fn bulk_load_survives_buffer_pressure() {
    // A pool of 4 frames (16 KiB) against ~100 KiB of data forces steady
    // eviction; results must be unaffected.
    let mut e = Engine::with_pool_size(4);
    e.execute("CREATE TABLE big (id integer, payload char)")
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..2000)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::from(format!("row-{i:04}-{}", "x".repeat(30))),
            ]
        })
        .collect();
    e.insert_rows("big", rows).unwrap();
    assert_eq!(e.table_len("big").unwrap(), 2000);
    let rs = e
        .execute("SELECT COUNT(*) FROM big WHERE id >= 1000")
        .unwrap();
    assert_eq!(rs.scalar_int(), Some(1000));
    let stats = e.stats();
    assert!(
        stats.buffer.evictions > 0,
        "pool pressure actually occurred"
    );
    assert!(
        stats.disk.pages_written > 0,
        "dirty pages were written back"
    );
}

#[test]
fn join_pipeline_with_indexes_and_temp_tables() {
    let mut e = Engine::new();
    e.execute_script(
        "CREATE TABLE emp (name char, dept integer);\
         CREATE TABLE dept (id integer, title char);\
         CREATE INDEX dept_id ON dept (id);\
         INSERT INTO emp VALUES ('ann', 1), ('bob', 2), ('carol', 1);\
         INSERT INTO dept VALUES (1, 'eng'), (2, 'sales');",
    )
    .unwrap();
    let rs = e
        .execute(
            "SELECT e.name, d.title FROM emp e, dept d \
             WHERE e.dept = d.id AND d.title = 'eng' ORDER BY name",
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::from("ann"), Value::from("eng")],
            vec![Value::from("carol"), Value::from("eng")],
        ]
    );

    // Materialize through a temp table, then set-subtract.
    e.execute("CREATE TEMP TABLE engineers (name char)")
        .unwrap();
    e.execute(
        "INSERT INTO engineers SELECT e.name FROM emp e, dept d \
         WHERE e.dept = d.id AND d.title = 'eng'",
    )
    .unwrap();
    let rs = e
        .execute("SELECT name FROM emp EXCEPT SELECT name FROM engineers")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::from("bob")]]);
    assert_eq!(e.drop_temp_tables(), 1);
}

#[test]
fn error_paths_do_not_corrupt_state() {
    let mut e = Engine::new();
    e.execute("CREATE TABLE t (a integer)").unwrap();
    e.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // A failing statement...
    assert!(matches!(
        e.execute("INSERT INTO t VALUES ('wrong type')"),
        Err(DbError::TypeMismatch(_))
    ));
    assert!(e.execute("SELECT nope FROM t").is_err());
    assert!(e.execute("CREATE TABLE t (b integer)").is_err());
    // ...leaves the data intact and the engine usable.
    let rs = e.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar_int(), Some(2));
}

#[test]
fn self_join_chain_of_four() {
    // Four-way self-join: paths of length 3 in a chain.
    let mut e = Engine::new();
    e.execute("CREATE TABLE g (s integer, t integer)").unwrap();
    e.insert_rows(
        "g",
        (0..6)
            .map(|i| vec![Value::Int(i), Value::Int(i + 1)])
            .collect(),
    )
    .unwrap();
    let rs = e
        .execute(
            "SELECT a.s, c.t FROM g a, g b, g c \
             WHERE a.t = b.s AND b.t = c.s ORDER BY s",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 4);
    assert_eq!(rs.rows[0], vec![Value::Int(0), Value::Int(3)]);
}

#[test]
fn index_maintenance_under_churn() {
    let mut e = Engine::new();
    e.execute("CREATE TABLE t (k integer, v char)").unwrap();
    e.execute("CREATE INDEX t_k ON t (k)").unwrap();
    for round in 0..5 {
        e.insert_rows(
            "t",
            (0..100)
                .map(|i| vec![Value::Int(i), Value::from(format!("r{round}"))])
                .collect(),
        )
        .unwrap();
        e.execute(&format!("DELETE FROM t WHERE v = 'r{round}' AND k >= 50"))
            .unwrap();
    }
    // 5 rounds x 50 surviving rows.
    assert_eq!(e.table_len("t").unwrap(), 250);
    let rs = e.execute("SELECT COUNT(*) FROM t WHERE k = 10").unwrap();
    assert_eq!(rs.scalar_int(), Some(5));
    let rs = e.execute("SELECT COUNT(*) FROM t WHERE k = 75").unwrap();
    assert_eq!(rs.scalar_int(), Some(0));
}

// ---------------------------------------------------------------------
// Property tests against a reference evaluator
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Row {
    a: i64,
    b: i64,
    s: String,
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (0i64..20, 0i64..20, "[a-c]{1,2}").prop_map(|(a, b, s)| Row { a, b, s }),
        0..40,
    )
}

fn load(rows: &[Row]) -> Engine {
    let mut e = Engine::new();
    e.execute("CREATE TABLE t (a integer, b integer, s char)")
        .unwrap();
    e.insert_rows(
        "t",
        rows.iter()
            .map(|r| vec![Value::Int(r.a), Value::Int(r.b), Value::from(r.s.as_str())])
            .collect(),
    )
    .unwrap();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conjunctive selection matches the reference filter, with and
    /// without an index on the equality column.
    #[test]
    fn selection_matches_reference(rows in arb_rows(), k in 0i64..20, lo in 0i64..20) {
        let expected = rows
            .iter()
            .filter(|r| r.a == k && r.b >= lo)
            .count() as i64;
        for indexed in [false, true] {
            let mut e = load(&rows);
            if indexed {
                e.execute("CREATE INDEX t_a ON t (a)").unwrap();
            }
            let rs = e
                .execute(&format!("SELECT COUNT(*) FROM t WHERE a = {k} AND b >= {lo}"))
                .unwrap();
            prop_assert_eq!(rs.scalar_int(), Some(expected), "indexed={}", indexed);
        }
    }

    /// Equi-join row counts match the reference nested loop.
    #[test]
    fn join_matches_reference(rows in arb_rows()) {
        let expected = rows
            .iter()
            .flat_map(|x| rows.iter().map(move |y| (x, y)))
            .filter(|(x, y)| x.b == y.a)
            .count();
        let mut e = load(&rows);
        let rs = e
            .execute("SELECT x.a, y.b FROM t x, t y WHERE x.b = y.a")
            .unwrap();
        prop_assert_eq!(rs.rows.len(), expected);
    }

    /// DISTINCT agrees with a reference set; ORDER BY yields sorted rows.
    #[test]
    fn distinct_and_order_match_reference(rows in arb_rows()) {
        let expected: std::collections::BTreeSet<i64> =
            rows.iter().map(|r| r.a).collect();
        let mut e = load(&rows);
        let rs = e.execute("SELECT DISTINCT a FROM t ORDER BY a").unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        prop_assert_eq!(got.clone(), expected.into_iter().collect::<Vec<_>>());
        let mut sorted = got.clone();
        sorted.sort();
        prop_assert_eq!(got, sorted);
    }

    /// UNION / EXCEPT behave as set operations.
    #[test]
    fn set_operations_match_reference(rows in arb_rows(), pivot in 0i64..20) {
        use std::collections::BTreeSet;
        let low: BTreeSet<i64> = rows.iter().filter(|r| r.a < pivot).map(|r| r.a).collect();
        let high: BTreeSet<i64> = rows.iter().filter(|r| r.a >= pivot).map(|r| r.a).collect();
        let mut e = load(&rows);
        let rs = e
            .execute(&format!(
                "SELECT a FROM t WHERE a < {pivot} UNION SELECT a FROM t WHERE a >= {pivot}"
            ))
            .unwrap();
        prop_assert_eq!(rs.rows.len(), low.union(&high).count());
        let rs = e
            .execute(&format!(
                "SELECT a FROM t EXCEPT SELECT a FROM t WHERE a >= {pivot}"
            ))
            .unwrap();
        prop_assert_eq!(rs.rows.len(), low.difference(&high).count());
    }

    /// DELETE removes exactly the matching rows.
    #[test]
    fn delete_matches_reference(rows in arb_rows(), k in 0i64..20) {
        let expected_remaining =
            rows.iter().filter(|r| r.a != k).count() as u64;
        let mut e = load(&rows);
        let rs = e.execute(&format!("DELETE FROM t WHERE a = {k}")).unwrap();
        prop_assert_eq!(rs.affected as usize, rows.len() - expected_remaining as usize);
        prop_assert_eq!(e.table_len("t").unwrap(), expected_remaining);
    }
}
