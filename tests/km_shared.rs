//! Knowledge-manager sessions over the shared MVCC engine: the
//! `Session::attach` path. N km sessions compile, evaluate LFPs, and
//! commit workspaces against one stored D/KB; answers must be
//! byte-identical to a single private session applying the same
//! operations serially, under every interleaving.

use km::session::{binary_sym, Session, SessionConfig};
use proptest::prelude::*;
use rdbms::{DbError, Engine, FaultInjector, SharedEngine, Value};
use std::collections::BTreeMap;
use std::thread;

const ANC_RULES: &str = "anc(X, Y) :- parent(X, Y).\n\
                         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n";

fn chain_rows(n: usize) -> Vec<Vec<Value>> {
    (0..n - 1)
        .map(|i| {
            vec![
                Value::from(format!("a{i}")),
                Value::from(format!("a{}", i + 1)),
            ]
        })
        .collect()
}

/// A shared engine bootstrapped with the ancestor D/KB: `parent` chain
/// plus the recursive rules, all committed through an attached session.
fn shared_ancestor_dkb(n: usize) -> SharedEngine {
    let shared = SharedEngine::new(Engine::new());
    let mut s = Session::attach(&shared, SessionConfig::default()).expect("attach");
    s.define_base("parent", &binary_sym()).expect("base");
    s.load_facts("parent", chain_rows(n)).expect("facts");
    s.load_rules(ANC_RULES).expect("rules");
    s.commit_workspace().expect("commit");
    shared
}

/// The serial reference: one private session, same setup.
fn private_ancestor_dkb(n: usize) -> Session {
    let mut s = Session::with_defaults().expect("session");
    s.define_base("parent", &binary_sym()).expect("base");
    s.load_facts("parent", chain_rows(n)).expect("facts");
    s.load_rules(ANC_RULES).expect("rules");
    s.commit_workspace().expect("commit");
    s
}

/// Acceptance: two attached sessions evaluate the recursive query
/// concurrently — semi-naive LFP with per-session temp namespaces on
/// snapshot forks of the same stored D/KB — and both answers are
/// byte-identical to the serial reference.
#[test]
fn two_shared_sessions_evaluate_lfp_concurrently_like_serial() {
    let mut reference = private_ancestor_dkb(8);
    let (_, expect) = reference.query("?- anc(a0, W).").expect("serial query");
    assert_eq!(expect.rows.len(), 7, "a0 has 7 descendants");

    let shared = shared_ancestor_dkb(8);
    let mut workers = Vec::new();
    for _ in 0..2 {
        let sh = shared.clone();
        let expect = expect.rows.clone();
        workers.push(thread::spawn(move || {
            let mut s = Session::attach(&sh, SessionConfig::default()).expect("attach");
            for _ in 0..3 {
                let (_, got) = s.query("?- anc(a0, W).").expect("shared query");
                assert_eq!(got.rows, expect, "shared LFP diverged from serial");
            }
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }
}

/// Attach is idempotent and race-safe: many sessions attaching to a
/// fresh engine all find (or one of them creates) the stored-D/KB
/// catalog, and every one of them is immediately serviceable.
#[test]
fn concurrent_attach_bootstraps_catalog_once() {
    let shared = SharedEngine::new(Engine::new());
    let mut workers = Vec::new();
    for _ in 0..4 {
        let sh = shared.clone();
        workers.push(thread::spawn(move || {
            let mut s = Session::attach(&sh, SessionConfig::default()).expect("attach");
            s.db_execute("SELECT * FROM rulesource").expect("catalog")
        }));
    }
    for w in workers {
        assert_eq!(w.join().expect("attacher panicked").rows.len(), 0);
    }
    // The catalog exists exactly once and a late attacher sees it.
    let mut late = Session::attach(&shared, SessionConfig::default()).expect("late attach");
    assert!(late.verify_integrity().is_ok());
}

/// Regression pinning key-granular validation at the km layer: two
/// sessions inserting *different* keys into the same stored relation in
/// overlapping transactions both commit (the inserts commute). Dropping
/// the engine to table-granular validation makes the same schedule
/// conflict — the ablation baseline.
#[test]
fn commuting_same_table_inserts_no_longer_conflict() {
    let shared = shared_ancestor_dkb(4);
    let mut a = Session::attach(&shared, SessionConfig::default()).expect("attach a");
    let mut b = Session::attach(&shared, SessionConfig::default()).expect("attach b");

    // Overlapping transactions: both snapshots predate both commits.
    a.backend_mut().begin().expect("begin a");
    b.backend_mut().begin().expect("begin b");
    a.db_execute("INSERT INTO parent VALUES ('ka', 'va')")
        .expect("a insert");
    b.db_execute("INSERT INTO parent VALUES ('kb', 'vb')")
        .expect("b insert");
    a.backend_mut().commit().expect("a commits first");
    b.backend_mut()
        .commit()
        .expect("disjoint-key insert must not conflict");
    a.backend_mut().refresh().expect("refresh");
    let rows = a.db_execute("SELECT * FROM parent").expect("scan").rows;
    assert_eq!(rows.len(), 5, "both inserts landed");

    // Ablation: table-granular validation reports a (false) conflict on
    // the exact same commuting schedule.
    shared.set_key_granular(false);
    a.backend_mut().begin().expect("begin a2");
    b.backend_mut().begin().expect("begin b2");
    a.db_execute("INSERT INTO parent VALUES ('kc', 'vc')")
        .expect("a insert");
    b.db_execute("INSERT INTO parent VALUES ('kd', 'vd')")
        .expect("b insert");
    a.backend_mut().commit().expect("a commits first");
    match b.backend_mut().commit() {
        Err(DbError::WriteConflict(_)) => {}
        other => panic!("table-granular baseline must conflict, got {other:?}"),
    }
}

/// Crash sweep over two users' interleaved workspace commits: inject a
/// disk fault at every write point of the schedule. After recovery each
/// acknowledged `commit_workspace` is durable and each unacknowledged
/// one left no trace — a workspace commit installs its facts atomically
/// or not at all.
#[test]
fn crash_sweep_over_two_user_workspace_commits() {
    let mut k = 0u64;
    let mut crash_points = 0u64;
    loop {
        let shared = shared_ancestor_dkb(3);
        let mut sessions = [
            Session::attach(&shared, SessionConfig::default()).expect("attach 0"),
            Session::attach(&shared, SessionConfig::default()).expect("attach 1"),
        ];
        shared.with_live(|eng| {
            eng.flush().unwrap();
            eng.set_fault_injector(FaultInjector::new().fail_after_writes(k));
        });
        // Each workspace commit installs two marker facts; atomicity
        // after a crash means both or neither survive.
        let mut acknowledged: Vec<(usize, i64)> = Vec::new();
        let mut crashed = false;
        'schedule: for j in 0..2i64 {
            for (si, s) in sessions.iter_mut().enumerate() {
                let r = (|| {
                    s.load_rules(&format!(
                        "parent(s{si}r{j}, h0).\n\
                         parent(s{si}r{j}, h1).\n"
                    ))?;
                    s.commit_workspace()
                })();
                match r {
                    Ok(_) => acknowledged.push((si, j)),
                    Err(_) => {
                        crashed = true;
                        break 'schedule;
                    }
                }
            }
        }
        if !crashed {
            // k exceeded the schedule's write count: sweep complete.
            shared.with_live(Engine::clear_fault_injector);
            break;
        }
        shared.with_live(Engine::clear_fault_injector);
        shared.recover().expect("recovery after injected crash");

        let mut reader = Session::attach(&shared, SessionConfig::default()).expect("re-attach");
        let rows = reader
            .db_execute("SELECT * FROM parent")
            .expect("scan")
            .rows;
        let mut halves: BTreeMap<String, u32> = BTreeMap::new();
        for row in &rows {
            let Value::Str(key) = &row[0] else {
                panic!("unexpected row shape {row:?}");
            };
            if key.starts_with('s') {
                *halves.entry(key.clone()).or_default() += 1;
            }
        }
        for (key, &n) in &halves {
            assert_eq!(n, 2, "torn workspace commit {key} after crash at write {k}");
        }
        for &(si, j) in &acknowledged {
            assert_eq!(
                halves.get(&format!("s{si}r{j}")).copied(),
                Some(2),
                "acknowledged workspace commit (s{si},r{j}) lost after crash at write {k}"
            );
        }
        // The recovered D/KB keeps serving knowledge-level work.
        let (_, res) = reader.query("?- anc(a0, W).").expect("post-crash query");
        assert_eq!(res.rows.len(), 2, "chain of 3 still answers");
        crash_points += 1;
        k += 1;
        assert!(k < 4096, "sweep did not terminate");
    }
    assert!(
        crash_points >= 3,
        "sweep must cover several crash points, got {crash_points}"
    );
}

/// Serial reference for the proptest: one private session applying the
/// same operation sequence in the same total order.
#[derive(Debug, Clone)]
enum Op {
    /// Autocommit-load two facts into the stored `parent` relation.
    LoadFacts(u8),
    /// Stage a fact in the workspace and commit it through the
    /// validated stored-update path.
    CommitFact(u8),
    /// Compile + evaluate the recursive query and record the answer.
    Query,
}

fn apply(s: &mut Session, op: &Op) -> Option<Vec<Vec<Value>>> {
    match op {
        Op::LoadFacts(v) => {
            s.load_facts(
                "parent",
                vec![
                    vec![Value::from(format!("l{v}")), Value::from(format!("m{v}"))],
                    vec![Value::from(format!("m{v}")), Value::from(format!("n{v}"))],
                ],
            )
            .expect("load_facts");
            None
        }
        Op::CommitFact(v) => {
            s.load_rules(&format!("parent(w{v}, x{v}).\n"))
                .expect("stage");
            s.commit_workspace().expect("commit_workspace");
            None
        }
        Op::Query => {
            let (_, r) = s.query("?- anc(a0, W).").expect("query");
            Some(r.rows)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole acceptance: a random interleaving of load_facts /
    /// commit_workspace / query across three attached sessions produces,
    /// at every query point, an answer byte-identical to one private
    /// session applying the same sequence serially.
    #[test]
    fn interleaved_km_sessions_match_serial_reference(
        ops in prop::collection::vec(
            (0usize..3, prop_oneof![
                (0u8..50).prop_map(Op::LoadFacts),
                (0u8..50).prop_map(Op::CommitFact),
                Just(Op::Query),
            ]),
            1..10,
        ),
    ) {
        let shared = shared_ancestor_dkb(5);
        let mut sessions: Vec<Session> = (0..3)
            .map(|_| Session::attach(&shared, SessionConfig::default()).expect("attach"))
            .collect();
        let mut reference = private_ancestor_dkb(5);
        for (si, op) in &ops {
            let got = apply(&mut sessions[*si], op);
            let want = apply(&mut reference, op);
            prop_assert_eq!(got, want, "session {} diverged on {:?}", si, op);
        }
        // Final state: every session, after its next refresh (implicit in
        // compile), answers the same closure as the serial reference.
        let want = apply(&mut reference, &Op::Query);
        for (si, s) in sessions.iter_mut().enumerate() {
            let got = apply(s, &Op::Query);
            prop_assert_eq!(got.clone(), want.clone(), "session {} diverged at the end", si);
        }
    }
}
