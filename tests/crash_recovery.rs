//! Crash-safety tests for durable stored-D/KB commits.
//!
//! The headline test sweeps every physical crash point of a workspace
//! commit: for each prefix length of page writes, a deterministic fault
//! injector "pulls the power cord" at that write, recovery runs, and the
//! database must be byte-equivalent to the pre-commit state with every
//! dictionary invariant intact. Because the commit record itself is a
//! write point, the sweep covers "crash during commit" too; the first
//! sweep index at which no fault fires demonstrates the post-state.

use km::session::{binary_sym, Session, SessionConfig};
use rdbms::{Engine, FaultInjector, Value};
use std::collections::BTreeMap;

/// Every table a commit can touch, dictionaries included.
const TABLES: &[&str] = &[
    "idb_relname",
    "idb_column",
    "edb_relname",
    "edb_column",
    "rulesource",
    "reachablepreds",
    "parent",
    "edge",
];

/// Logical content of the whole database, sorted so physical layout
/// differences (insert hints, slot order) cannot mask or fake a diff.
fn dump(db: &mut Engine) -> BTreeMap<String, Vec<Vec<Value>>> {
    let mut out = BTreeMap::new();
    for table in TABLES {
        if db.has_table(table) {
            let mut rows = db.scan_all(table).unwrap();
            rows.sort();
            out.insert(table.to_string(), rows);
        }
    }
    out
}

/// A durable session with stored base facts and an uncommitted workspace:
/// two rules (one recursive) plus facts for a brand-new predicate, so the
/// commit exercises dictionary inserts, rule storage, closure maintenance,
/// and base-relation creation inside one transaction.
fn durable_session() -> Session {
    let mut s = Session::new(SessionConfig {
        durability: true,
        ..SessionConfig::default()
    })
    .unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_facts("parent", workload::chain_facts(8)).unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
         edge(e0, e1).\n\
         edge(e1, e2).\n",
    )
    .unwrap();
    s
}

/// The state a successful commit must produce, measured on a fault-free
/// run (the builds are deterministic, so this is comparable across runs).
fn post_commit_state() -> BTreeMap<String, Vec<Vec<Value>>> {
    let mut s = durable_session();
    s.commit_workspace().unwrap();
    dump(s.engine_mut())
}

/// Sweep every crash point of a commit with injectors built by `mk`:
/// crash at write `k`, recover, require the exact pre-state and intact
/// invariants, then retry the commit and require the exact post-state.
/// Ends at the first `k` no fault reaches (the commit's total write count).
fn crash_point_sweep(mk: impl Fn(u64) -> FaultInjector) {
    let post = post_commit_state();
    let mut crash_points = 0u64;
    let mut k = 0u64;
    loop {
        let mut s = durable_session();
        // Flush so the pre-state is entirely on disk: the injector then
        // only ever fires inside the transaction it is aimed at.
        s.engine_mut().flush().unwrap();
        let pre = dump(s.engine_mut());
        s.engine_mut().set_fault_injector(mk(k));
        match s.commit_workspace() {
            Ok(_) => {
                s.engine_mut().clear_fault_injector();
                assert_eq!(dump(s.engine_mut()), post, "fault-free commit at k={k}");
                s.verify_integrity().unwrap();
                break;
            }
            Err(_) => {
                assert!(
                    s.engine().crashed(),
                    "commit failed without a crash at k={k}"
                );
                s.recover().unwrap();
                assert_eq!(
                    dump(s.engine_mut()),
                    pre,
                    "crash at write {k}: recovery must restore the pre-commit state"
                );
                s.verify_integrity().unwrap();
                // The recovered session is fully usable: the workspace kept
                // everything, so the same commit retried lands post-state.
                s.commit_workspace().unwrap();
                assert_eq!(
                    dump(s.engine_mut()),
                    post,
                    "retried commit after crash at {k}"
                );
                s.verify_integrity().unwrap();
                crash_points += 1;
            }
        }
        k += 1;
        assert!(k < 4096, "sweep did not terminate");
    }
    assert!(
        crash_points >= 3,
        "sweep must cover several crash points, got {crash_points}"
    );
}

#[test]
fn commit_crash_point_sweep_clean_failures() {
    crash_point_sweep(|k| FaultInjector::new().fail_after_writes(k));
}

#[test]
fn commit_crash_point_sweep_torn_pages() {
    crash_point_sweep(|k| FaultInjector::new().fail_after_writes(k).torn_writes(true));
}

#[test]
fn commit_crash_point_sweep_torn_wal_tail() {
    crash_point_sweep(|k| FaultInjector::new().fail_after_writes(k).tear_wal_tail(64));
}

#[test]
fn seeded_fault_plans_always_recover_consistently() {
    let post = post_commit_state();
    for seed in 0..32u64 {
        let mut s = durable_session();
        s.engine_mut().flush().unwrap();
        let pre = dump(s.engine_mut());
        s.engine_mut()
            .set_fault_injector(FaultInjector::from_seed(seed));
        match s.commit_workspace() {
            Ok(_) => {
                s.engine_mut().clear_fault_injector();
                assert_eq!(dump(s.engine_mut()), post, "seed {seed}");
            }
            Err(_) => {
                s.recover().unwrap();
                assert_eq!(dump(s.engine_mut()), pre, "seed {seed}");
            }
        }
        s.verify_integrity().unwrap();
    }
}

#[test]
fn transient_read_faults_are_retried_not_fatal() {
    let mut s = durable_session();
    s.engine_mut()
        .set_fault_injector(FaultInjector::new().transient_read_every(3));
    s.commit_workspace().unwrap();
    let stats = s.engine().stats().disk;
    assert!(stats.read_retries > 0, "the injector did fire");
    assert!(
        !s.engine().crashed(),
        "transient faults never crash the disk"
    );
    s.engine_mut().clear_fault_injector();
    s.verify_integrity().unwrap();
    let (_, r) = s.query("?- anc(a0, W).").unwrap();
    assert_eq!(r.rows.len(), 7);
}

#[test]
fn queries_work_after_crash_recovery() {
    let mut s = durable_session();
    s.prepare("anc_all", "?- anc(a0, W).").unwrap();
    s.engine_mut().flush().unwrap();
    s.engine_mut()
        .set_fault_injector(FaultInjector::new().fail_after_writes(2));
    assert!(s.commit_workspace().is_err());
    s.recover().unwrap();
    // Prepared plans were invalidated by recovery; re-execution recompiles
    // against the recovered state (plus the surviving workspace) and agrees
    // with a fresh ad-hoc query.
    let prepared = s.execute_prepared("anc_all").unwrap();
    let (_, adhoc) = s.query("?- anc(a0, W).").unwrap();
    assert_eq!(prepared.rows, adhoc.rows);
    assert_eq!(prepared.rows.len(), 7);
    assert!(s.recompilations() >= 1, "recovery forced a recompilation");
}

#[test]
fn durability_off_means_zero_wal_traffic_and_identical_results() {
    let mut plain = Session::with_defaults().unwrap();
    plain.define_base("parent", &binary_sym()).unwrap();
    plain
        .load_facts("parent", workload::chain_facts(8))
        .unwrap();
    plain
        .load_rules(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
             edge(e0, e1).\n\
             edge(e1, e2).\n",
        )
        .unwrap();
    plain.commit_workspace().unwrap();

    // The default path never touches the WAL at all...
    assert!(!plain.engine().wal_enabled());
    let stats = plain.engine().stats().disk;
    assert_eq!(stats.wal_records, 0);
    assert_eq!(stats.wal_bytes, 0);
    assert_eq!(stats.injected_faults, 0);

    // ...and produces exactly the state the durable path produces.
    assert_eq!(dump(plain.engine_mut()), post_commit_state());
    let stored = plain.stored().clone();
    stored.verify_integrity(plain.engine_mut()).unwrap();
}

#[test]
fn metrics_collection_never_perturbs_recovery() {
    // Two identical sessions crash at the same write; one is polled for
    // stats and metrics at every step, the other is left alone. Observation
    // must be side-effect free: both recover to byte-identical states.
    let run = |observe: bool| -> BTreeMap<String, Vec<Vec<Value>>> {
        let mut s = durable_session();
        s.engine_mut().flush().unwrap();
        if observe {
            let _ = s.engine().stats();
            let _ = s.engine().metrics().to_json();
        }
        s.engine_mut()
            .set_fault_injector(FaultInjector::new().fail_after_writes(3));
        let res = s.commit_workspace();
        assert!(res.is_err(), "the injector fires inside the commit");
        if observe {
            let _ = s.engine().stats();
            let _ = s.engine().metrics().to_json();
        }
        s.recover().unwrap();
        if observe {
            let m = s.engine().metrics();
            assert!(m.counter_value("wal.records") > 0, "WAL activity recorded");
            let _ = m.to_json();
        }
        s.verify_integrity().unwrap();
        dump(s.engine_mut())
    };
    assert_eq!(
        run(true),
        run(false),
        "reading metrics must not change what recovery replays"
    );
}

#[test]
fn fault_during_parallel_evaluation_recovers() {
    // A durable session evaluating with 4 workers: the clique scheduler,
    // the per-iteration delta batches, and the partitioned operators are
    // all live, but every page and WAL write still goes through the
    // single engine lock. The sweep arms the injector and runs a
    // parallel clique evaluation plus commit inside the armed window,
    // crashing at every write point the episode reaches — the commit's
    // WAL writes always, and the evaluation's own spill-file writes when
    // RDBMS_SPILL=force makes the operators spill. Recovery must restore
    // the exact pre-commit stored D/KB, and parallel evaluation must
    // keep producing the reference answer afterwards.
    let make = || {
        let mut s = Session::new(SessionConfig {
            durability: true,
            parallelism: 4,
            ..SessionConfig::default()
        })
        .unwrap();
        s.define_base("parent", &binary_sym()).unwrap();
        s.load_facts("parent", workload::chain_facts(8)).unwrap();
        s.load_rules(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
             edge(e0, e1).\n\
             edge(e1, e2).\n",
        )
        .unwrap();
        s
    };
    let (post, expected) = {
        let mut s = make();
        s.commit_workspace().unwrap();
        let state = dump(s.engine_mut());
        let (_, r) = s.query("?- anc(a0, W).").unwrap();
        (state, r.rows)
    };
    assert_eq!(expected.len(), 7);

    let mut crash_points = 0u64;
    let mut k = 0u64;
    loop {
        let mut s = make();
        s.engine_mut().flush().unwrap();
        let pre = dump(s.engine_mut());
        s.engine_mut()
            .set_fault_injector(FaultInjector::new().fail_after_writes(k));
        // Under the default budget-driven spill mode the parallel LFP is
        // pure read-path work (temp pages stay in the buffer pool), so
        // the armed fault only ever fires inside the commit. Under
        // RDBMS_SPILL=force the evaluation itself emits spill-file
        // writes: early write points then crash the disk mid-query, and
        // recovery must restore the exact pre-commit stored D/KB before
        // a clean re-run and commit land the post-state.
        match s.query("?- anc(a0, W).") {
            Ok((_, r)) => {
                assert_eq!(r.rows, expected, "armed-injector evaluation at k={k}");
                match s.commit_workspace() {
                    Ok(_) => {
                        s.engine_mut().clear_fault_injector();
                        assert_eq!(dump(s.engine_mut()), post, "fault-free commit at k={k}");
                        s.verify_integrity().unwrap();
                        break;
                    }
                    Err(_) => {
                        assert!(
                            s.engine().crashed(),
                            "commit failed without a crash at k={k}"
                        );
                        s.recover().unwrap();
                        assert_eq!(
                            dump(s.engine_mut()),
                            pre,
                            "crash at write {k} with 4 evaluation workers: recovery \
                             must restore the pre-commit stored D/KB"
                        );
                        s.verify_integrity().unwrap();
                        // The recovered session still evaluates correctly —
                        // and still in parallel.
                        let (_, r) = s.query("?- anc(a0, W).").unwrap();
                        assert_eq!(r.rows, expected, "parallel re-run after crash at {k}");
                        crash_points += 1;
                    }
                }
            }
            Err(_) => {
                // A spill-file write point inside the parallel evaluation.
                assert!(
                    s.engine().crashed(),
                    "evaluation failed without a crash at k={k}"
                );
                s.recover().unwrap();
                assert_eq!(
                    dump(s.engine_mut()),
                    pre,
                    "crash at spill write {k}: recovery must leave the \
                     stored D/KB byte-identical to its pre-query state"
                );
                s.verify_integrity().unwrap();
                let (_, r) = s.query("?- anc(a0, W).").unwrap();
                assert_eq!(r.rows, expected, "parallel re-run after eval crash at {k}");
                s.commit_workspace().unwrap();
                assert_eq!(dump(s.engine_mut()), post, "commit after eval crash at {k}");
                s.verify_integrity().unwrap();
                crash_points += 1;
            }
        }
        k += 1;
        assert!(k < 4096, "sweep did not terminate");
    }
    assert!(
        crash_points >= 3,
        "the sweep must cover several crash points, got {crash_points}"
    );
}

#[test]
fn commit_failure_keeps_workspace_for_retry() {
    let mut s = durable_session();
    let rules_before = s.workspace().rule_count();
    let facts_before = s.workspace().fact_count();
    s.engine_mut().flush().unwrap();
    s.engine_mut()
        .set_fault_injector(FaultInjector::new().fail_after_writes(0));
    assert!(s.commit_workspace().is_err());
    assert_eq!(s.workspace().rule_count(), rules_before);
    assert_eq!(s.workspace().fact_count(), facts_before);
    s.recover().unwrap();
    let t = s.commit_workspace().unwrap();
    assert_eq!(t.rules_stored, 2);
    // Materialized facts leave the workspace only on success.
    assert_eq!(s.workspace().fact_count(), 0);
}
