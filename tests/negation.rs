//! End-to-end tests of the stratified-negation extension: parsing,
//! stratification checks, code generation to `NOT EXISTS`, and evaluation
//! against reference semantics.

use km::session::{binary_sym, Session};
use km::{KmError, LfpStrategy};
use rdbms::Value;
use std::collections::BTreeSet;

fn graph_session() -> Session {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    s.define_base("node", &[hornlog::types::AttrType::Sym])
        .unwrap();
    let edges = [("a", "b"), ("b", "c"), ("d", "d")];
    s.load_facts(
        "edge",
        edges
            .iter()
            .map(|(x, y)| vec![Value::from(*x), Value::from(*y)])
            .collect(),
    )
    .unwrap();
    for n in ["a", "b", "c", "d"] {
        s.load_facts("node", vec![vec![Value::from(n)]]).unwrap();
    }
    s
}

#[test]
fn unreachable_pairs_via_negated_closure() {
    let mut s = graph_session();
    s.load_rules(
        "reach(X, Y) :- edge(X, Y).\n\
         reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
         unreach(X, Y) :- node(X), node(Y), not reach(X, Y).\n",
    )
    .unwrap();
    let (compiled, result) = s.query("?- unreach(a, W).").unwrap();
    assert_eq!(compiled.relevant_rules, 3);
    // a reaches b, c. Unreachable from a: a itself and d.
    let got: BTreeSet<&str> = result.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(got, ["a", "d"].into_iter().collect());
}

#[test]
fn negation_agrees_between_strategies() {
    for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
        let mut s = graph_session();
        s.config.strategy = strategy;
        s.load_rules(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
             sink(X) :- node(X), not hasout(X).\n\
             hasout(X) :- edge(X, Y).\n",
        )
        .unwrap();
        let (_, result) = s.query("?- sink(W).").unwrap();
        // Only c has no outgoing edge.
        assert_eq!(result.rows, vec![vec![Value::from("c")]], "{strategy:?}");
    }
}

#[test]
fn magic_is_skipped_for_negation_but_answers_match() {
    let mut plain = graph_session();
    let mut magic = graph_session();
    magic.config.optimize = true;
    let rules = "reach(X, Y) :- edge(X, Y).\n\
                 reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
                 unreach(X, Y) :- node(X), node(Y), not reach(X, Y).\n";
    plain.load_rules(rules).unwrap();
    magic.load_rules(rules).unwrap();
    let (c1, r1) = plain.query("?- unreach(a, W).").unwrap();
    let (c2, r2) = magic.query("?- unreach(a, W).").unwrap();
    assert_eq!(r1.rows, r2.rows);
    assert!(!c1.optimized);
    assert!(!c2.optimized, "optimizer declines rules with negation");
}

#[test]
fn unstratified_program_is_rejected() {
    let mut s = graph_session();
    s.load_rules("win(X) :- edge(X, Y), not win(Y).\n").unwrap();
    match s.query("?- win(W).") {
        Err(KmError::Semantic(msg)) => assert!(msg.contains("stratified"), "{msg}"),
        other => panic!("expected stratification error, got {other:?}"),
    }
}

#[test]
fn unsafe_negation_is_rejected() {
    let mut s = graph_session();
    // Y appears only under negation: not range-restricted.
    s.load_rules("weird(X, Y) :- node(X), not edge(X, Y).\n")
        .unwrap();
    assert!(matches!(
        s.query("?- weird(a, W)."),
        Err(KmError::Semantic(_))
    ));
}

#[test]
fn negation_with_constants_in_negated_atom() {
    let mut s = graph_session();
    s.load_rules("notowner(X) :- node(X), not edge(X, b).\n")
        .unwrap();
    let (_, result) = s.query("?- notowner(W).").unwrap();
    // Only a has an edge to b.
    let got: BTreeSet<&str> = result.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(got, ["b", "c", "d"].into_iter().collect());
}

#[test]
fn negated_query_atoms() {
    let mut s = graph_session();
    s.load_rules(
        "reach(X, Y) :- edge(X, Y).\n\
         reach(X, Y) :- edge(X, Z), reach(Z, Y).\n",
    )
    .unwrap();
    // Nodes with an outgoing edge that do NOT reach c.
    let (_, result) = s.query("?- edge(W, V), not reach(W, c).").unwrap();
    let got: BTreeSet<&str> = result.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(got, ["d"].into_iter().collect());
}

#[test]
fn three_strata_pipeline() {
    let mut s = graph_session();
    s.load_rules(
        "hasout(X) :- edge(X, Y).\n\
         sink(X) :- node(X), not hasout(X).\n\
         nonsink(X) :- node(X), not sink(X).\n",
    )
    .unwrap();
    let (_, result) = s.query("?- nonsink(W).").unwrap();
    let got: BTreeSet<&str> = result.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(got, ["a", "b", "d"].into_iter().collect());
}

#[test]
fn negation_commits_to_stored_dkb() {
    let mut s = graph_session();
    s.load_rules(
        "hasout(X) :- edge(X, Y).\n\
         sink(X) :- node(X), not hasout(X).\n",
    )
    .unwrap();
    let t = s.commit_workspace().unwrap();
    assert_eq!(t.rules_stored, 2);
    s.workspace_mut().clear();
    // Round-trips through rulesource text and still evaluates.
    let (compiled, result) = s.query("?- sink(W).").unwrap();
    assert_eq!(compiled.relevant_rules, 2);
    assert_eq!(result.rows, vec![vec![Value::from("c")]]);
}

#[test]
fn negation_inside_recursive_rule_on_lower_stratum() {
    // Paths that avoid blocked nodes: recursion negating a lower-stratum
    // predicate inside the recursive rule.
    let mut s = Session::with_defaults().unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    s.define_base("blocked", &[hornlog::types::AttrType::Sym])
        .unwrap();
    let chain = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")];
    s.load_facts(
        "edge",
        chain
            .iter()
            .map(|(x, y)| vec![Value::from(*x), Value::from(*y)])
            .collect(),
    )
    .unwrap();
    s.load_facts("blocked", vec![vec![Value::from("c")]])
        .unwrap();
    s.load_rules(
        "clear(X, Y) :- edge(X, Y), not blocked(Y).\n\
         clear(X, Y) :- clear(X, Z), edge(Z, Y), not blocked(Y).\n",
    )
    .unwrap();
    let (_, result) = s.query("?- clear(a, W).").unwrap();
    // a->b ok; b->c blocked, so nothing beyond b.
    assert_eq!(result.rows, vec![vec![Value::from("b")]]);
}
