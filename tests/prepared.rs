//! Tests of precompiled-query caching with update invalidation (the
//! paper's conclusion #3: precompilation pays for query-intensive
//! workloads, at the price of invalidation checks on every update).

use km::session::{binary_sym, Session, SessionConfig};
use km::KmError;

fn session() -> Session {
    let mut s = Session::new(SessionConfig::default()).unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_facts("parent", workload::chain_facts(7)).unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    s
}

#[test]
fn prepared_query_executes_repeatedly_without_recompiling() {
    let mut s = session();
    s.prepare("descendants", "?- anc(a0, W).").unwrap();
    for _ in 0..3 {
        let r = s.execute_prepared("descendants").unwrap();
        assert_eq!(r.rows.len(), 6);
    }
    assert_eq!(s.recompilations(), 0);
    assert_eq!(s.prepared_is_valid("descendants"), Some(true));
}

#[test]
fn relevant_update_invalidates_and_recompiles() {
    let mut s = session();
    s.prepare("descendants", "?- anc(a0, W).").unwrap();
    s.execute_prepared("descendants").unwrap();

    // A new rule touching `anc` invalidates the plan.
    s.load_rules("anc(X, Y) :- parent(Y, X).\n").unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    assert_eq!(s.prepared_is_valid("descendants"), Some(false));

    // Execution transparently recompiles and picks up the new rule
    // (ancestor is now symmetric closure: everyone is reachable).
    let r = s.execute_prepared("descendants").unwrap();
    assert_eq!(r.rows.len(), 7, "a0 now reaches everyone incl. itself");
    assert_eq!(s.recompilations(), 1);
    assert_eq!(s.prepared_is_valid("descendants"), Some(true));
}

#[test]
fn workspace_edits_mark_plans_stale_but_answers_stay_correct() {
    let mut s = session();
    s.prepare("descendants", "?- anc(a0, W).").unwrap();
    let baseline = s.execute_prepared("descendants").unwrap().rows;
    assert_eq!(s.recompilations(), 0);

    // Any workspace mutation conservatively marks plans stale — an
    // uncommitted rule must be visible to prepared queries too.
    s.load_rules("other(X, Y) :- parent(X, Y).\n").unwrap();
    assert_eq!(s.prepared_is_valid("descendants"), Some(false));
    let r = s.execute_prepared("descendants").unwrap();
    assert_eq!(r.rows, baseline, "disjoint edit does not change answers");
    assert_eq!(s.recompilations(), 1);

    // Steady workspace: no further recompilation.
    s.execute_prepared("descendants").unwrap();
    assert_eq!(s.recompilations(), 1);
}

#[test]
fn uncommitted_workspace_rules_are_visible_to_prepared_queries() {
    // Regression for the staleness hole: a plan prepared before a
    // workspace edit must observe the edit, exactly like query() does.
    let mut s = session();
    s.prepare("descendants", "?- anc(a0, W).").unwrap();
    let before = s.execute_prepared("descendants").unwrap().rows.len();
    // Add an uncommitted rule that widens anc.
    s.load_rules("anc(X, Y) :- parent(Y, X).\n").unwrap();
    let after = s.execute_prepared("descendants").unwrap().rows.len();
    let (_, fresh) = s.query("?- anc(a0, W).").unwrap();
    assert_eq!(after, fresh.rows.len(), "prepared matches ad-hoc query");
    assert!(after > before);
}

#[test]
fn re_preparing_replaces_the_entry() {
    let mut s = session();
    s.prepare("q", "?- anc(a0, W).").unwrap();
    s.prepare("q", "?- anc(a3, W).").unwrap();
    let r = s.execute_prepared("q").unwrap();
    assert_eq!(r.rows.len(), 3, "a3 reaches a4..a6");
}

#[test]
fn unknown_prepared_name_errors() {
    let mut s = session();
    assert!(matches!(
        s.execute_prepared("nope"),
        Err(KmError::Internal(_))
    ));
}

#[test]
fn dependency_set_is_recorded() {
    let mut s = session();
    let compiled = s.compile("?- anc(a0, W).").unwrap();
    assert!(compiled.relevant_preds.contains("anc"));
    assert!(compiled.relevant_preds.contains("parent"));
}

#[test]
fn fact_only_commit_invalidates_prepared_queries() {
    // Regression: facts materialized into base relations must invalidate
    // cached programs that still read them from compile-time seeds.
    let mut s = Session::new(SessionConfig::default()).unwrap();
    s.load_rules("edge(a, b).").unwrap();
    s.prepare("q", "?- edge(a, W).").unwrap();
    assert_eq!(s.execute_prepared("q").unwrap().rows.len(), 1);
    s.commit_workspace().unwrap(); // edge becomes a base relation
    s.load_rules("edge(a, c).").unwrap();
    s.commit_workspace().unwrap(); // appends to the base relation
    assert_eq!(
        s.prepared_is_valid("q"),
        Some(false),
        "seeded plan is stale"
    );
    let r = s.execute_prepared("q").unwrap();
    assert_eq!(r.rows.len(), 2, "recompiled plan sees both rows");
}
