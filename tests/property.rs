//! Property-based tests over the full pipeline: for random graphs and
//! random queries, every engine configuration (naive/semi-naive ×
//! magic on/off) must agree with a reference transitive-closure
//! computation; parsing must round-trip through pretty-printing.

use hornlog::{parse_clause, parse_program, Atom, Clause, Term};
use km::session::{binary_sym, Session, SessionConfig};
use km::LfpStrategy;
use proptest::prelude::*;
use rdbms::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

fn reference_reachable(edges: &[(u8, u8)], start: u8) -> BTreeSet<u8> {
    let mut adj: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        for &next in adj.get(&n).into_iter().flatten() {
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    seen
}

fn node_name(n: u8) -> String {
    format!("v{n}")
}

fn session_for(edges: &[(u8, u8)], config: SessionConfig) -> Session {
    let mut s = Session::new(config).unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    let rows: Vec<Vec<Value>> = edges
        .iter()
        .map(|&(a, b)| vec![Value::from(node_name(a)), Value::from(node_name(b))])
        .collect();
    s.load_facts("edge", rows).unwrap();
    s.load_rules(&workload::ancestor_program("edge")).unwrap();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four configurations compute the reference closure from a bound
    /// start node.
    #[test]
    fn closure_matches_reference(
        edges in prop::collection::vec((0u8..10, 0u8..10), 0..25),
        start in 0u8..10,
    ) {
        let expected: Vec<Vec<Value>> = reference_reachable(&edges, start)
            .into_iter()
            .map(|n| vec![Value::from(node_name(n))])
            .collect();
        for optimize in [false, true] {
            for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
                let config = SessionConfig { optimize, strategy, ..SessionConfig::default() };
                let mut s = session_for(&edges, config);
                let (_, result) =
                    s.query(&format!("?- anc({}, W).", node_name(start))).unwrap();
                prop_assert_eq!(
                    &result.rows, &expected,
                    "optimize={} strategy={:?}", optimize, strategy
                );
            }
        }
    }

    /// The all-free query yields exactly the full closure size, for every
    /// configuration.
    #[test]
    fn full_closure_size_matches(
        edges in prop::collection::vec((0u8..8, 0u8..8), 0..20),
    ) {
        let nodes: BTreeSet<u8> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        let expected: usize = nodes
            .iter()
            .map(|&n| reference_reachable(&edges, n).len())
            .sum();
        for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
            let config = SessionConfig { optimize: false, strategy, ..SessionConfig::default() };
            let mut s = session_for(&edges, config);
            let (_, result) = s.query("?- anc(V, W).").unwrap();
            prop_assert_eq!(result.rows.len(), expected);
        }
    }

    /// Boolean (fully ground) queries agree with reference reachability.
    #[test]
    fn ground_queries_match_reference(
        edges in prop::collection::vec((0u8..8, 0u8..8), 1..20),
        from in 0u8..8,
        to in 0u8..8,
    ) {
        let expected = reference_reachable(&edges, from).contains(&to);
        let mut s = session_for(&edges, SessionConfig {
            optimize: true,
            ..SessionConfig::default()
        });
        let (_, result) = s
            .query(&format!("?- anc({}, {}).", node_name(from), node_name(to)))
            .unwrap();
        prop_assert_eq!(!result.rows.is_empty(), expected);
    }
}

// ---------------------------------------------------------------------
// Parser round-trip
// ---------------------------------------------------------------------

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[A-Z][a-z0-9]{0,3}".prop_map(Term::var),
        "[a-z][a-z0-9_]{0,5}".prop_map(Term::sym),
        any::<i32>().prop_map(|i| Term::int(i as i64)),
        // Strings needing quotes.
        "[ -~]{0,8}".prop_map(Term::sym),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        "[a-z][a-z0-9_]{0,6}",
        prop::collection::vec(arb_term(), 1..4),
    )
        .prop_map(|(p, args)| Atom::new(p, args))
}

fn arb_clause() -> impl Strategy<Value = Clause> {
    (
        arb_atom(),
        prop::collection::vec(arb_atom(), 0..4),
        prop::collection::vec(arb_atom(), 0..2),
    )
        .prop_map(|(head, body, mut negative_body)| {
            // A bodyless clause with negated atoms but no positive atoms
            // cannot round-trip distinguishably from its display form in
            // every corner; keep negation attached to non-empty bodies.
            if body.is_empty() {
                negative_body.clear();
            }
            // A predicate named "not" in the positive body would be
            // re-parsed as a negation marker; rename it.
            let body = body
                .into_iter()
                .map(|a| {
                    if a.predicate == "not" {
                        a.with_predicate("not_")
                    } else {
                        a
                    }
                })
                .collect();
            Clause {
                head,
                body,
                negative_body,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any clause our AST can express round-trips through its textual form
    /// — except symbols containing a double quote, which the surface
    /// syntax cannot spell (there is no escape sequence).
    #[test]
    fn clause_display_parse_roundtrip(clause in arb_clause()) {
        let has_quote = |t: &Term| matches!(t, Term::Const(hornlog::Const::Str(s)) if s.contains('"'));
        prop_assume!(
            !clause.head.args.iter().any(&has_quote)
                && !clause.all_body_atoms().flat_map(|a| a.args.iter()).any(&has_quote)
        );
        let text = clause.to_string();
        let parsed = parse_clause(&text).unwrap();
        prop_assert_eq!(parsed, clause);
    }

    /// Whole programs round-trip too.
    #[test]
    fn program_display_parse_roundtrip(
        clauses in prop::collection::vec(arb_clause(), 0..8)
    ) {
        let has_quote = |t: &Term| matches!(t, Term::Const(hornlog::Const::Str(s)) if s.contains('"'));
        prop_assume!(!clauses.iter().any(|c| {
            c.head.args.iter().any(&has_quote)
                || c.all_body_atoms().flat_map(|a| a.args.iter()).any(&has_quote)
        }));
        let program = hornlog::Program::new(clauses);
        let parsed = parse_program(&program.to_string()).unwrap();
        prop_assert_eq!(parsed, program);
    }
}

// ---------------------------------------------------------------------
// PCG / reachability properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// hornlog reachability over a random rule graph agrees with BFS over
    /// the same dependency edges.
    #[test]
    fn pcg_reachability_matches_bfs(
        deps in prop::collection::vec((0u8..12, 0u8..12), 0..30),
        start in 0u8..12,
    ) {
        let src: String = deps
            .iter()
            .map(|(h, b)| format!("p{h}(X) :- p{b}(X).\n"))
            .collect();
        let program = parse_program(&src).unwrap();
        let pcg = hornlog::Pcg::build(&program);
        let got = pcg.reachable_from(&format!("p{start}"));
        let expected: BTreeSet<String> = reference_reachable(&deps, start)
            .into_iter()
            .map(|n| format!("p{n}"))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// The transitive closure is transitive: (a,b) and (b,c) edges imply
    /// (a,c) is in the closure.
    #[test]
    fn transitive_closure_is_transitive(
        deps in prop::collection::vec((0u8..8, 0u8..8), 0..20),
    ) {
        let src: String = deps
            .iter()
            .map(|(h, b)| format!("p{h}(X) :- p{b}(X).\n"))
            .collect();
        let program = parse_program(&src).unwrap();
        let tc: BTreeSet<(String, String)> = hornlog::Pcg::build(&program)
            .transitive_closure()
            .into_iter()
            .collect();
        for (a, b) in &tc {
            for (b2, c) in &tc {
                if b == b2 {
                    prop_assert!(
                        tc.contains(&(a.clone(), c.clone())),
                        "missing ({a}, {c})"
                    );
                }
            }
        }
    }
}
