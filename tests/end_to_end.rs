//! Cross-crate integration tests: the full Knowledge-Manager-over-DBMS
//! pipeline on each workload family, under every configuration.

use km::session::{binary_sym, Session, SessionConfig};
use km::LfpStrategy;
use rdbms::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use workload::graphs;

use workload::edges_to_rows as rows;

/// Reference transitive closure by BFS.
fn reachable_from(edges: &[(String, String)], start: &str) -> BTreeSet<String> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        for &next in adj.get(n).into_iter().flatten() {
            if seen.insert(next.to_string()) {
                queue.push_back(next);
            }
        }
    }
    seen
}

fn all_configs() -> Vec<SessionConfig> {
    let mut out = Vec::new();
    for optimize in [false, true] {
        for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
            out.push(SessionConfig {
                optimize,
                strategy,
                ..SessionConfig::default()
            });
        }
    }
    out
}

fn session_with_edges(config: SessionConfig, edges: &[(String, String)]) -> Session {
    let mut s = Session::new(config).unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    s.load_facts("edge", rows(edges)).unwrap();
    s.load_rules(&workload::ancestor_program("edge")).unwrap();
    s
}

fn check_closure_query(edges: &[(String, String)], start: &str) {
    let expected: Vec<Vec<Value>> = reachable_from(edges, start)
        .into_iter()
        .map(|n| vec![Value::from(n)])
        .collect();
    for config in all_configs() {
        let mut s = session_with_edges(config, edges);
        let (_, result) = s.query(&format!("?- anc(\"{start}\", W).")).unwrap();
        assert_eq!(
            result.rows, expected,
            "config optimize={} strategy={:?}",
            config.optimize, config.strategy
        );
    }
}

#[test]
fn ancestor_on_lists() {
    let edges = graphs::lists(3, 8);
    check_closure_query(&edges, "L1_0");
    check_closure_query(&edges, "L2_5");
}

#[test]
fn ancestor_on_full_binary_tree() {
    let edges = graphs::full_binary_tree(6);
    check_closure_query(&edges, "n1");
    check_closure_query(&edges, "n5");
    check_closure_query(&edges, "n63"); // leaf: empty answer
}

#[test]
fn ancestor_on_layered_dag() {
    let edges = graphs::layered_dag(4, 5, 2, 11);
    check_closure_query(&edges, "d0_0");
    check_closure_query(&edges, "d2_3");
}

#[test]
fn ancestor_on_cyclic_digraph() {
    let edges = graphs::cyclic_digraph(2, 5, 4, 3);
    check_closure_query(&edges, "c0_0");
    check_closure_query(&edges, "c1_2");
}

#[test]
fn all_free_query_computes_full_closure() {
    let edges = graphs::full_binary_tree(4);
    let mut expected = 0usize;
    let nodes: BTreeSet<&String> = edges.iter().flat_map(|(a, b)| [a, b]).collect();
    for n in &nodes {
        expected += reachable_from(&edges, n).len();
    }
    for config in all_configs() {
        let mut s = session_with_edges(config, &edges);
        let (_, result) = s.query("?- anc(V, W).").unwrap();
        assert_eq!(result.rows.len(), expected);
    }
}

#[test]
fn second_argument_bound() {
    let edges = graphs::full_binary_tree(5);
    // Who are the ancestors of leaf n31? Exactly the nodes on the path to
    // the root: n15, n7, n3, n1.
    for config in all_configs() {
        let mut s = session_with_edges(config, &edges);
        let (_, result) = s.query("?- anc(W, n31).").unwrap();
        let got: BTreeSet<String> = result
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        let expected: BTreeSet<String> = ["n1", "n3", "n7", "n15"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(got, expected);
    }
}

#[test]
fn nonlinear_ancestor_agrees_with_linear() {
    let edges = graphs::layered_dag(4, 4, 2, 5);
    let mut linear = session_with_edges(SessionConfig::default(), &edges);
    let mut s = Session::with_defaults().unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    s.load_facts("edge", rows(&edges)).unwrap();
    s.load_rules(&workload::rules::ancestor_nonlinear("edge"))
        .unwrap();
    let (_, r1) = linear.query("?- anc(d0_0, W).").unwrap();
    let (_, r2) = s.query("?- anc(d0_0, W).").unwrap();
    assert_eq!(r1.rows, r2.rows);
}

#[test]
fn same_generation_on_tree() {
    let edges = graphs::full_binary_tree(5);
    let mut s = Session::new(SessionConfig {
        optimize: true,
        ..SessionConfig::default()
    })
    .unwrap();
    // up = child-to-parent, down = parent-to-child, flat = sibling base.
    s.define_base("up", &binary_sym()).unwrap();
    s.define_base("down", &binary_sym()).unwrap();
    s.define_base("flat", &binary_sym()).unwrap();
    s.load_facts(
        "up",
        edges
            .iter()
            .map(|(p, c)| vec![Value::from(c.as_str()), Value::from(p.as_str())])
            .collect(),
    )
    .unwrap();
    s.load_facts("down", rows(&edges)).unwrap();
    // flat: each node is in the same generation as itself at the root.
    s.load_facts("flat", vec![vec![Value::from("n1"), Value::from("n1")]])
        .unwrap();
    s.load_rules(workload::same_generation()).unwrap();
    let (_, result) = s.query("?- sg(n16, W).").unwrap();
    // n16 is on level 5 (16 nodes); all level-5 nodes are same-generation.
    assert_eq!(result.rows.len(), 16);
    assert!(result.rows.contains(&vec![Value::from("n31")]));
}

#[test]
fn figure1_style_mutual_recursion_runs() {
    // Mutually recursive even/odd path-length predicates over a chain.
    let mut s = Session::with_defaults().unwrap();
    s.define_base("step", &binary_sym()).unwrap();
    let chain: Vec<(String, String)> = (0..10)
        .map(|i| (format!("v{i}"), format!("v{}", i + 1)))
        .collect();
    s.load_facts("step", rows(&chain)).unwrap();
    s.load_rules(
        "evenpath(X, Y) :- step(X, Z), oddpath(Z, Y).\n\
         oddpath(X, Y) :- step(X, Y).\n\
         oddpath(X, Y) :- step(X, Z), evenpath(Z, Y).\n",
    )
    .unwrap();
    for config in all_configs() {
        s.config = config;
        let (compiled, result) = s.query("?- evenpath(v0, W).").unwrap();
        // v0 reaches v2, v4, v6, v8, v10 by even-length paths.
        let got: BTreeSet<String> = result
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        let expected: BTreeSet<String> = (1..=5).map(|i| format!("v{}", 2 * i)).collect();
        assert_eq!(got, expected, "config {:?}", config.strategy);
        assert_eq!(compiled.relevant_rules, 3);
    }
}

#[test]
fn query_through_nonrecursive_view_stack() {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    s.load_facts("edge", rows(&graphs::lists(1, 5))).unwrap();
    s.load_rules(
        "hop(X, Y) :- edge(X, Y).\n\
         twohop(X, Y) :- hop(X, Z), hop(Z, Y).\n\
         fourhop(X, Y) :- twohop(X, Z), twohop(Z, Y).\n",
    )
    .unwrap();
    let (compiled, result) = s.query("?- fourhop(\"L0_0\", W).").unwrap();
    assert_eq!(compiled.relevant_rules, 3);
    assert_eq!(result.rows, vec![vec![Value::from("L0_4")]]);
}

#[test]
fn repeated_queries_are_deterministic() {
    let edges = graphs::cyclic_digraph(1, 6, 3, 9);
    let mut s = session_with_edges(SessionConfig::default(), &edges);
    let (_, first) = s.query("?- anc(c0_0, W).").unwrap();
    for _ in 0..3 {
        let (_, again) = s.query("?- anc(c0_0, W).").unwrap();
        assert_eq!(first.rows, again.rows);
    }
}

#[test]
fn constants_inside_rule_bodies() {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    s.load_facts("edge", rows(&graphs::lists(2, 4))).unwrap();
    // Only paths that start from list 0's head.
    s.load_rules(
        "fromhead(Y) :- edge(\"L0_0\", Y).\n\
         fromhead(Y) :- edge(X, Y), fromhead(X).\n",
    )
    .unwrap();
    let (_, result) = s.query("?- fromhead(W).").unwrap();
    assert_eq!(result.rows.len(), 3, "L0_1, L0_2, L0_3");
}
