//! Chaos harness: seeded schedules interleaving disk faults, cooperative
//! cancellation, and budget exhaustion at random points during serial and
//! 4-worker evaluations and commits. After every episode the engine must
//! recover, `verify_integrity` must pass, and a clean re-run must yield
//! byte-identical answers to a pristine reference session.
//!
//! The bench harness (`experiments chaos`) runs the 500-episode version of
//! the same schedule and writes `BENCH_chaos.json`; this file keeps CI's
//! `cargo test` pass at a few dozen episodes.

use km::session::{binary_sym, Session, SessionConfig};
use km::{EvalError, EvalResource, KmError};
use rdbms::{Engine, FaultInjector, Value};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

const TABLES: &[&str] = &[
    "idb_relname",
    "idb_column",
    "edb_relname",
    "edb_column",
    "rulesource",
    "reachablepreds",
    "parent",
    "edge",
];

/// Logical content of the whole database, keyed by table, rows sorted.
type DbState = BTreeMap<String, Vec<Vec<Value>>>;
/// Reference answer rows plus the post-commit database state.
type Reference = (Vec<Vec<Value>>, DbState);

fn dump(db: &mut Engine) -> DbState {
    let mut out = BTreeMap::new();
    for table in TABLES {
        if db.has_table(table) {
            let mut rows = db.scan_all(table).unwrap();
            rows.sort();
            out.insert(table.to_string(), rows);
        }
    }
    out
}

/// A durable session over a cyclic digraph base relation with the ancestor
/// rules plus facts for a new predicate in the workspace, so commits
/// exercise dictionary inserts, rule storage, and base-relation creation.
fn chaos_session(parallelism: usize, config: SessionConfig) -> Session {
    let mut s = Session::new(SessionConfig {
        durability: true,
        parallelism,
        ..config
    })
    .unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    let edges = workload::cyclic_digraph(2, 6, 4, 11);
    s.load_facts("parent", workload::edges_to_rows(&edges))
        .unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
         edge(e0, e1).\n\
         edge(e1, e2).\n",
    )
    .unwrap();
    s
}

const QUERY: &str = "?- anc(A, B).";

/// Reference answer and post-commit state from a pristine session.
fn reference(parallelism: usize) -> Reference {
    let mut s = chaos_session(parallelism, SessionConfig::default());
    let (_, r) = s.query(QUERY).unwrap();
    s.commit_workspace().unwrap();
    (r.rows, dump(s.engine_mut()))
}

/// Acceptance criterion: a fact-budget-exceeding run over the cyclic
/// closure terminates with `EvalError::Budget` well within its deadline,
/// partial traces intact, engine still serving.
#[test]
fn divergent_closure_trips_budget_within_deadline() {
    let mut s = chaos_session(
        1,
        SessionConfig {
            deadline: Some(Duration::from_secs(30)),
            max_derived_facts: Some(20),
            ..SessionConfig::default()
        },
    );
    let start = Instant::now();
    let err = s.query(QUERY).unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "budget must fire long before the deadline"
    );
    match err {
        KmError::Eval(boxed) => {
            let EvalError::Budget {
                resource,
                used,
                partial,
                ..
            } = *boxed;
            assert_eq!(resource, EvalResource::DerivedFacts);
            assert!(used > 20);
            assert!(
                !partial.clique_traces.is_empty() || partial.breakdown.tuples_produced > 0,
                "partial progress is reported via the trace machinery"
            );
        }
        other => panic!("expected budget error, got {other:?}"),
    }
    // The engine is still serving: lift the budget, get the full answer.
    s.config.max_derived_facts = None;
    let (_, r) = s.query(QUERY).unwrap();
    assert_eq!(r.rows, reference(1).0);
}

/// Satellite: cancellation armed at every write point of a 4-worker
/// evaluation-plus-commit never leaves an inconsistent stored D/KB.
///
/// The write points come in two flavours. Under the default spill mode
/// evaluation is write-free and every point lands in the commit; commits
/// are gated at entry, so once page flushing begins the commit runs to
/// completion and a flag raised mid-commit must yield the full
/// post-commit state, never a torn one. Under `RDBMS_SPILL=force` the
/// evaluation itself emits spill-page writes, so early points fire
/// mid-query: the governed exit must abort cooperatively, leave the
/// stored D/KB byte-identical to its pre-query state, and hand back a
/// session that can immediately re-run and commit.
#[test]
fn cancellation_sweep_at_every_write_point() {
    let (expected, post) = reference(4);
    let mut n = 0u64;
    let mut fired = 0u64;
    loop {
        let mut s = chaos_session(4, SessionConfig::default());
        s.engine_mut().flush().unwrap();
        let pre = dump(s.engine_mut());
        let handle = s.engine().cancel_handle();
        s.engine_mut()
            .set_fault_injector(FaultInjector::new().cancel_at_write(n, handle));
        let point_fired = match s.query(QUERY) {
            Ok((_, r)) => {
                assert_eq!(r.rows, expected, "4-worker evaluation at write point {n}");
                s.commit_workspace()
                    .expect("mid-commit cancellation must not abort the commit");
                assert!(!s.engine().crashed(), "cancellation never crashes the disk");
                let was_canceled = s.engine().cancel_requested();
                s.engine_mut().clear_fault_injector();
                s.engine_mut().reset_cancel();
                assert_eq!(dump(s.engine_mut()), post, "write point {n}");
                was_canceled
            }
            Err(err) => {
                // A spill-file write point inside the evaluation: the
                // governed exit acknowledged the cancellation and dropped
                // the run's temporaries.
                match err {
                    KmError::Eval(boxed) => {
                        let EvalError::Budget { resource, .. } = *boxed;
                        assert_eq!(
                            resource,
                            EvalResource::Canceled,
                            "eval abort at write point {n} must come from the armed cancel"
                        );
                    }
                    other => panic!("expected cancellation at write point {n}, got {other:?}"),
                }
                assert!(!s.engine().crashed(), "cancellation never crashes the disk");
                s.engine_mut().clear_fault_injector();
                s.engine_mut().reset_cancel();
                assert_eq!(
                    dump(s.engine_mut()),
                    pre,
                    "aborted evaluation must leave the stored D/KB untouched at write point {n}"
                );
                // The session keeps serving: clean re-run plus commit.
                let (_, r) = s.query(QUERY).unwrap();
                assert_eq!(r.rows, expected, "post-abort re-run at write point {n}");
                s.commit_workspace().unwrap();
                assert_eq!(
                    dump(s.engine_mut()),
                    post,
                    "post-abort commit at write point {n}"
                );
                true
            }
        };
        s.verify_integrity().unwrap();
        // Reopen from a snapshot: the on-disk form is consistent too.
        let (_, again) = s.query(QUERY).unwrap();
        assert_eq!(
            again.rows, expected,
            "post-cancel re-run at write point {n}"
        );
        if !point_fired {
            break; // n exceeded the episode's total write count
        }
        fired += 1;
        n += 1;
        assert!(n < 4096, "sweep did not terminate");
    }
    assert!(
        fired >= 3,
        "sweep must cover several write points, got {fired}"
    );
}

/// A tiny deterministic xorshift generator for episode schedules.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One seeded chaos episode: a perturbation is armed, an evaluation and a
/// commit run into it, the engine is put back in service, and the episode
/// must end with intact integrity and byte-identical clean-run answers.
/// Returns which perturbation ran (for coverage accounting).
fn episode(seed: u64, refs: &BTreeMap<usize, Reference>) -> &'static str {
    let mut rng = Rng::new(seed);
    let parallelism = if rng.pick(2) == 0 { 1 } else { 4 };
    let (expected, post) = &refs[&parallelism];

    let mut config = SessionConfig::default();
    let kind = rng.pick(6);
    let name = match kind {
        0 => "disk-fault",
        1 => "cancel-at-write",
        2 => "fact-budget",
        3 => "iteration-budget",
        4 => "row-budget",
        _ => "fault+budget",
    };
    if kind == 2 || kind == 5 {
        config.max_derived_facts = Some(1 + rng.pick(30));
    }
    if kind == 3 {
        config.max_iterations = Some(1 + rng.pick(3));
    }
    let mut s = chaos_session(parallelism, config);
    s.engine_mut().flush().unwrap();
    let pre = dump(s.engine_mut());
    match kind {
        0 | 5 => s
            .engine_mut()
            .set_fault_injector(FaultInjector::from_seed(rng.next())),
        1 => {
            let handle = s.engine().cancel_handle();
            let at = rng.pick(24);
            s.engine_mut()
                .set_fault_injector(FaultInjector::new().cancel_at_write(at, handle));
        }
        4 => s.engine_mut().set_row_budget(Some(1 + rng.pick(200))),
        _ => {}
    }

    // Evaluate, then commit, into the armed perturbation. Either may fail
    // with a crash, a budget breach, or a cancellation; none may poison
    // the engine.
    let _ = s.query(QUERY);
    let commit = s.commit_workspace();

    // Put the engine back in service.
    if s.engine().crashed() {
        assert!(commit.is_err(), "a crashed episode cannot have committed");
        s.recover()
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
    }
    s.engine_mut().clear_fault_injector();
    s.engine_mut().set_row_budget(None);
    s.engine_mut().reset_cancel();
    s.config.max_derived_facts = None;
    s.config.max_iterations = None;

    // Integrity holds whatever happened.
    s.verify_integrity()
        .unwrap_or_else(|e| panic!("seed {seed}: integrity: {e}"));
    // The stored D/KB is fully pre- or fully post-commit.
    let state = dump(s.engine_mut());
    assert!(
        state == *post || state == pre,
        "seed {seed}: stored D/KB is neither pre- nor post-commit"
    );
    // A clean re-run yields byte-identical answers.
    if state == pre {
        s.commit_workspace()
            .unwrap_or_else(|e| panic!("seed {seed}: retried commit: {e}"));
        assert_eq!(dump(s.engine_mut()), *post, "seed {seed}: retried commit");
    }
    let (_, r) = s.query(QUERY).unwrap();
    assert_eq!(r.rows, *expected, "seed {seed}: clean re-run answers");
    name
}

#[test]
fn seeded_chaos_episodes_recover_and_rerun_identically() {
    let refs: BTreeMap<usize, _> = [1usize, 4].iter().map(|&p| (p, reference(p))).collect();
    let mut coverage: BTreeMap<&'static str, u64> = BTreeMap::new();
    for seed in 0..48u64 {
        *coverage.entry(episode(seed, &refs)).or_insert(0) += 1;
    }
    // The schedule must actually have exercised every perturbation class.
    for kind in [
        "disk-fault",
        "cancel-at-write",
        "fact-budget",
        "iteration-budget",
        "row-budget",
        "fault+budget",
    ] {
        assert!(
            coverage.get(kind).copied().unwrap_or(0) > 0,
            "{kind} never ran"
        );
    }
}

/// Satellite: recovery runs `verify_integrity` automatically (default on)
/// and the verdict lands on the `engine.recovery_verified` gauge.
#[test]
fn recovery_auto_verifies_and_sets_gauge() {
    let mut s = chaos_session(1, SessionConfig::default());
    s.engine_mut().flush().unwrap();
    assert_eq!(
        s.engine().metrics().gauge_value("engine.recovery_verified"),
        Some(-1.0),
        "unset before any recovery"
    );
    s.engine_mut()
        .set_fault_injector(FaultInjector::new().fail_after_writes(3));
    assert!(s.commit_workspace().is_err());
    s.recover().unwrap();
    assert_eq!(
        s.engine().metrics().gauge_value("engine.recovery_verified"),
        Some(1.0),
        "post-recovery verification passed and was recorded"
    );
    // Opting out skips the check and leaves the gauge unset.
    let mut s = chaos_session(
        1,
        SessionConfig {
            verify_on_recover: false,
            ..SessionConfig::default()
        },
    );
    s.engine_mut().flush().unwrap();
    s.engine_mut()
        .set_fault_injector(FaultInjector::new().fail_after_writes(3));
    assert!(s.commit_workspace().is_err());
    s.recover().unwrap();
    assert_eq!(
        s.engine().metrics().gauge_value("engine.recovery_verified"),
        Some(-1.0)
    );
}
