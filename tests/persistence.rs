//! Persistence tests: the whole D/KB — facts, dictionaries, rule source,
//! and the compiled reachability form — survives a snapshot round trip,
//! and queries over the reopened session behave identically.

use km::session::{binary_sym, Session, SessionConfig};
use proptest::prelude::*;
use rdbms::Value;

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dkbms_{tag}_{}.snap", std::process::id()))
}

fn build_and_commit() -> Session {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_facts("parent", workload::chain_facts(9)).unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    s
}

#[test]
fn whole_dkb_survives_save_and_open() {
    let path = temp_path("whole_dkb");
    let mut original = build_and_commit();
    let (_, before) = original.query("?- anc(a0, W).").unwrap();
    original.save(&path).unwrap();

    let mut reopened = Session::open(&path, SessionConfig::default()).unwrap();
    std::fs::remove_file(&path).ok();

    // Rules come back from the persisted rulesource; facts from the
    // persisted base relation; the compiled form is intact.
    let (compiled, after) = reopened.query("?- anc(a0, W).").unwrap();
    assert_eq!(compiled.relevant_rules, 2);
    assert_eq!(before.rows, after.rows);
    let stored = reopened.stored().clone();
    assert!(stored.reachable_count(reopened.engine_mut()).unwrap() >= 2);
}

#[test]
fn reopened_session_accepts_further_commits_and_data() {
    let path = temp_path("further");
    let mut original = build_and_commit();
    original.save(&path).unwrap();

    let mut s = Session::open(&path, SessionConfig::default()).unwrap();
    std::fs::remove_file(&path).ok();

    // Extend the data and the rule base after reopening.
    s.load_facts("parent", vec![vec![Value::from("a8"), Value::from("a9")]])
        .unwrap();
    s.load_rules("far(X) :- anc(a0, X).\n").unwrap();
    s.commit_workspace().unwrap();
    s.workspace_mut().clear();
    let (compiled, result) = s.query("?- far(W).").unwrap();
    assert_eq!(compiled.relevant_rules, 3);
    assert_eq!(result.rows.len(), 9, "a1..a9");
}

#[test]
fn workspace_is_not_persisted() {
    let path = temp_path("workspace");
    let mut original = build_and_commit();
    original
        .load_rules("uncommitted(X) :- anc(a0, X).\n")
        .unwrap();
    original.save(&path).unwrap();

    let mut reopened = Session::open(&path, SessionConfig::default()).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(reopened.workspace().is_empty());
    assert!(reopened.query("?- uncommitted(W).").is_err());
}

#[test]
fn opening_missing_or_garbage_files_errors_cleanly() {
    assert!(Session::open("/nonexistent/nope.snap", SessionConfig::default()).is_err());
    let path = temp_path("garbage");
    std::fs::write(&path, b"this is not a snapshot").unwrap();
    let result = Session::open(&path, SessionConfig::default());
    std::fs::remove_file(&path).ok();
    assert!(result.is_err());
}

#[test]
fn workspace_facts_are_materialized_by_commit_and_survive() {
    // The paper's §3.1 flow: enter rules AND facts, commit, reopen, query.
    let path = temp_path("facts");
    let mut s = Session::with_defaults().unwrap();
    s.load_rules(
        "parent(adam, bob).\n\
         parent(bob, carol).\n\
         anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    let t = s.commit_workspace().unwrap();
    assert_eq!(t.facts_stored, 2, "facts became base-relation rows");
    assert!(t.fact_predicates.contains("parent"));
    // Facts left the workspace (they now shadow nothing).
    assert_eq!(s.workspace().fact_count(), 0);
    assert_eq!(
        s.workspace().rule_count(),
        2,
        "rules stay for further edits"
    );

    // Queries work immediately after commit...
    let (_, r) = s.query("?- anc(adam, W).").unwrap();
    assert_eq!(r.rows.len(), 2);
    s.save(&path).unwrap();

    // ...and after reopening from the snapshot.
    let mut reopened = Session::open(&path, SessionConfig::default()).unwrap();
    std::fs::remove_file(&path).ok();
    let (_, r2) = reopened.query("?- anc(adam, W).").unwrap();
    assert_eq!(r.rows, r2.rows);
}

#[test]
fn repeated_fact_commits_deduplicate() {
    let mut s = Session::with_defaults().unwrap();
    s.load_rules("likes(ann, tea).\nlikes(bob, tea).\n")
        .unwrap();
    let t1 = s.commit_workspace().unwrap();
    assert_eq!(t1.facts_stored, 2);
    // Same facts again plus one new: only the new one lands.
    s.load_rules("likes(ann, tea).\nlikes(cay, tea).\n")
        .unwrap();
    let t2 = s.commit_workspace().unwrap();
    assert_eq!(t2.facts_stored, 1);
    assert!(s.engine().stats().statements > 0);
    let mut s2 = s;
    assert_eq!(s2.engine_mut().table_len("likes").unwrap(), 3);
}

#[test]
fn facts_for_rule_defined_predicates_stay_in_the_workspace() {
    // A fact for a predicate that also has rules is a seed, not a base
    // relation — committing must not materialize it.
    let mut s = Session::with_defaults().unwrap();
    s.load_rules(
        "edge(a, b).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(x0, y0).\n",
    )
    .unwrap();
    let t = s.commit_workspace().unwrap();
    assert!(t.fact_predicates.contains("edge"));
    assert!(!t.fact_predicates.contains("path"), "path is rule-defined");
    assert_eq!(s.workspace().fact_count(), 1, "the path seed stays");
    let (_, r) = s.query("?- path(W, V).").unwrap();
    assert_eq!(r.rows.len(), 2, "edge row + seeded path fact");
}

#[test]
fn raw_engine_snapshot_is_rejected_by_session_open() {
    // A snapshot saved from a bare engine (no D/KB storage structures) is
    // a valid engine snapshot but not a session.
    let path = temp_path("raw_engine");
    let mut e = rdbms::Engine::new();
    e.execute("CREATE TABLE t (a integer)").unwrap();
    e.save_snapshot(&path).unwrap();
    let result = Session::open(&path, SessionConfig::default());
    std::fs::remove_file(&path).ok();
    match result {
        Err(km::KmError::Semantic(msg)) => assert!(msg.contains("not a D/KB session")),
        other => panic!("expected semantic error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn conflicting_fact_types_abort_commit_before_any_write() {
    // Regression: a fact conflicting with an existing base relation's
    // schema must fail the semantic check, not a mid-commit insert.
    let mut s = Session::with_defaults().unwrap();
    s.define_base(
        "nums",
        &[hornlog::types::AttrType::Int, hornlog::types::AttrType::Int],
    )
    .unwrap();
    s.load_rules(
        "viewer(X) :- nums(X, X).\n\
         nums(notanint, alsonot).\n",
    )
    .unwrap();
    assert!(s.commit_workspace().is_err());
    // Nothing was written: no rules stored, no rows appended.
    let stored = s.stored().clone();
    assert_eq!(stored.rule_count(s.engine_mut()).unwrap(), 0);
    assert_eq!(s.engine_mut().table_len("nums").unwrap(), 0);
}

#[test]
fn arity_conflicting_fact_aborts_commit() {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_rules("a(X) :- parent(X, X).\nparent(onlyone).\n")
        .unwrap();
    assert!(s.commit_workspace().is_err());
    let stored = s.stored().clone();
    assert_eq!(
        stored.rule_count(s.engine_mut()).unwrap(),
        0,
        "atomic abort"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot save/open loses nothing no matter how small the buffer
    /// pool is: a tiny pool forces constant eviction while two tables are
    /// loaded and one is carved up by deletes, so every page is dirtied,
    /// evicted, and re-read before the snapshot flushes the rest. The
    /// expected contents are recomputed from the raw inputs, never read
    /// back through the engine under test.
    #[test]
    fn snapshot_roundtrip_never_loses_rows_under_any_pool_capacity(
        frames in 2usize..40,
        rows in prop::collection::vec((0i64..500, "[a-z]{1,12}"), 1..150),
        cutoff in 0i64..500,
    ) {
        let mut e = rdbms::Engine::with_pool_size(frames);
        e.execute("CREATE TABLE nums (n integer, s char)").unwrap();
        e.execute("CREATE TABLE names (s char)").unwrap();
        e.insert_rows(
            "nums",
            rows.iter()
                .map(|(n, s)| vec![Value::from(*n), Value::from(s.as_str())])
                .collect(),
        )
        .unwrap();
        e.insert_rows(
            "names",
            rows.iter().map(|(_, s)| vec![Value::from(s.as_str())]).collect(),
        )
        .unwrap();
        e.execute(&format!("DELETE FROM nums WHERE n < {cutoff}")).unwrap();

        let mut expect_nums: Vec<Vec<Value>> = rows
            .iter()
            .filter(|(n, _)| *n >= cutoff)
            .map(|(n, s)| vec![Value::from(*n), Value::from(s.as_str())])
            .collect();
        expect_nums.sort();
        let mut expect_names: Vec<Vec<Value>> =
            rows.iter().map(|(_, s)| vec![Value::from(s.as_str())]).collect();
        expect_names.sort();

        let path = temp_path("prop_roundtrip");
        e.save_snapshot(&path).unwrap();
        let mut reopened = rdbms::Engine::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let mut got_nums = reopened.scan_all("nums").unwrap();
        got_nums.sort();
        let mut got_names = reopened.scan_all("names").unwrap();
        got_names.sort();
        prop_assert_eq!(&got_nums, &expect_nums);
        prop_assert_eq!(&got_names, &expect_names);

        // The original engine agrees after all that eviction traffic too.
        let mut still = e.scan_all("nums").unwrap();
        still.sort();
        prop_assert_eq!(&still, &expect_nums);
    }

    /// The full D/KB session round trip holds for arbitrary chain sizes:
    /// committed rules, facts, and the compiled form answer the same
    /// recursive query after save + open.
    #[test]
    fn session_roundtrip_answers_match_for_any_chain(n in 3usize..12) {
        let mut s = Session::with_defaults().unwrap();
        s.define_base("parent", &binary_sym()).unwrap();
        s.load_facts("parent", workload::chain_facts(n)).unwrap();
        s.load_rules(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        s.commit_workspace().unwrap();
        s.workspace_mut().clear();
        let (_, before) = s.query("?- anc(a0, W).").unwrap();
        prop_assert_eq!(before.rows.len(), n - 1);

        let path = temp_path("prop_session");
        s.save(&path).unwrap();
        let mut reopened = Session::open(&path, SessionConfig::default()).unwrap();
        std::fs::remove_file(&path).ok();
        let (_, after) = reopened.query("?- anc(a0, W).").unwrap();
        prop_assert_eq!(before.rows, after.rows);
    }
}

#[test]
fn open_syncs_compiled_storage_config_with_snapshot() {
    let path = temp_path("source_only");
    let mut s = Session::new(SessionConfig {
        compiled_storage: false,
        ..SessionConfig::default()
    })
    .unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.save(&path).unwrap();
    // Asking for compiled storage over a source-only snapshot downgrades
    // the *config* too, so callers see the architecture they actually got.
    let reopened = Session::open(
        &path,
        SessionConfig {
            compiled_storage: true,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!reopened.config.compiled_storage);
}
