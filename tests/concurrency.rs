//! Concurrency tests for the multi-session MVCC engine: snapshot
//! stability under a committing writer, first-committer-wins validation,
//! prepared statements vs. concurrent DDL, and a crash sweep over the
//! write points of interleaved group commits.
//!
//! The serial-equivalence contract under test: a transaction that
//! commits with its read ∪ write set unversioned since its snapshot is
//! replayed verbatim on the live engine, so the multi-session history is
//! byte-identical to some serial execution in commit order.

use proptest::prelude::*;
use rdbms::{DbError, Engine, FaultInjector, SharedEngine, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const QUERY: &str = "SELECT k, v FROM kv";

/// A shared engine over `kv(k int, v int)` with two seed rows.
fn seeded() -> SharedEngine {
    let mut db = Engine::new();
    db.execute("CREATE TABLE kv (k int, v int)").unwrap();
    db.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
        .unwrap();
    SharedEngine::new(db)
}

/// Acceptance: four concurrent sessions sustain byte-identical snapshot
/// reads — content and order — while a writer commits through the same
/// engine, with no coordination between readers and writer.
#[test]
fn four_sessions_read_stable_snapshots_while_writer_commits() {
    let shared = seeded();
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let sh = shared.clone();
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut s = sh.session();
            let first = s.execute(QUERY).unwrap().rows;
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let again = s.execute(QUERY).unwrap().rows;
                assert_eq!(again, first, "snapshot read changed under a live writer");
                reads += 1;
            }
            // After an explicit refresh the session observes the writer.
            s.refresh().unwrap();
            let fresh = s.execute(QUERY).unwrap().rows;
            assert!(fresh.len() > first.len(), "refresh must observe commits");
            reads
        }));
    }
    let mut w = shared.session();
    for i in 0..200i64 {
        w.execute(&format!("INSERT INTO kv VALUES ({}, {i})", 100 + i))
            .unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader never got a read in");
    }
    let mut check = shared.session();
    assert_eq!(check.execute(QUERY).unwrap().rows.len(), 202);
}

/// Satellite: prepared statements are fork-local. A handle keeps
/// answering on the session's snapshot while another session rebuilds
/// the table underneath it, and recompiles transparently once the
/// session refreshes onto the new catalog.
#[test]
fn prepared_statements_survive_concurrent_ddl() {
    let shared = seeded();
    let mut a = shared.session();
    let mut b = shared.session();
    let q = a.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    let before = a.execute_prepared(&q, &[Value::Int(1)]).unwrap().rows;
    assert_eq!(before, vec![vec![Value::Int(10)]]);

    // B drops and recreates kv with a different shape and content.
    b.execute("DROP TABLE kv").unwrap();
    b.execute("CREATE TABLE kv (k int, v int, w int)").unwrap();
    b.execute("INSERT INTO kv VALUES (1, 11, 111)").unwrap();

    // A's handle still answers from A's snapshot, byte-identical.
    let stale = a.execute_prepared(&q, &[Value::Int(1)]).unwrap().rows;
    assert_eq!(stale, before, "prepared reads must be snapshot-stable");

    // After refresh the same handle recompiles against the new schema.
    a.refresh().unwrap();
    let fresh = a.execute_prepared(&q, &[Value::Int(1)]).unwrap().rows;
    assert_eq!(fresh, vec![vec![Value::Int(11)]]);
}

/// Satellite regression: an autocommit write re-snapshots the session,
/// so a handle prepared before the write must be recompiled for the new
/// fork — its old statement id does not exist there.
#[test]
fn prepared_handles_survive_autocommit_resnapshot() {
    let shared = seeded();
    let mut s = shared.session();
    let q = s.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    s.execute("INSERT INTO kv VALUES (7, 70)").unwrap();
    let rows = s.execute_prepared(&q, &[Value::Int(7)]).unwrap().rows;
    assert_eq!(rows, vec![vec![Value::Int(70)]]);
}

/// Tentpole acceptance: crash the disk at every write point of a run of
/// interleaved committing sessions. After recovery every acknowledged
/// commit is durable, every transaction is atomic (both marker rows or
/// neither), and the engine serves new sessions.
#[test]
fn crash_sweep_over_interleaved_commits_preserves_atomicity() {
    let mut k = 0u64;
    let mut crash_points = 0u64;
    loop {
        let shared = seeded();
        let mut sessions: Vec<_> = (0..4).map(|_| shared.session()).collect();
        shared.with_live(|eng| {
            eng.flush().unwrap();
            eng.set_fault_injector(FaultInjector::new().fail_after_writes(k));
        });
        // Each transaction inserts two marker halves; atomicity after a
        // crash means both or neither survive.
        let mut acknowledged: Vec<(i64, i64)> = Vec::new();
        let mut crashed = false;
        'schedule: for j in 0..3i64 {
            for (si, s) in sessions.iter_mut().enumerate() {
                let si = si as i64 + 10;
                let r = (|| -> Result<(), DbError> {
                    s.begin()?;
                    s.execute(&format!("INSERT INTO kv VALUES ({si}, {})", j * 2))?;
                    s.execute(&format!("INSERT INTO kv VALUES ({si}, {})", j * 2 + 1))?;
                    s.commit()
                })();
                match r {
                    Ok(()) => acknowledged.push((si, j)),
                    Err(DbError::WriteConflict(e)) => {
                        panic!("round-robin schedule can never conflict: {e}")
                    }
                    Err(_) => {
                        crashed = true;
                        break 'schedule;
                    }
                }
            }
        }
        if !crashed {
            // k exceeded the schedule's total write count: the sweep
            // covered every write point.
            shared.with_live(Engine::clear_fault_injector);
            break;
        }
        shared.with_live(Engine::clear_fault_injector);
        shared.recover().expect("recovery after injected crash");
        let mut reader = shared.session();
        let rows = reader.execute(QUERY).unwrap().rows;
        // Group marker rows by (session, transaction round).
        let mut halves: BTreeMap<(i64, i64), u32> = BTreeMap::new();
        for row in &rows {
            let (Value::Int(s), Value::Int(v)) = (&row[0], &row[1]) else {
                panic!("unexpected row shape {row:?}");
            };
            if *s >= 10 {
                *halves.entry((*s, v / 2)).or_default() += 1;
            }
        }
        for (&(s, j), &n) in &halves {
            assert_eq!(n, 2, "torn transaction ({s},{j}) after crash at write {k}");
        }
        for &(s, j) in &acknowledged {
            assert_eq!(
                halves.get(&(s, j)).copied(),
                Some(2),
                "acknowledged commit ({s},{j}) lost after crash at write {k}"
            );
        }
        // The recovered engine keeps serving: one more full transaction.
        let mut s = shared.session();
        s.begin().unwrap();
        s.execute("INSERT INTO kv VALUES (99, 0)").unwrap();
        s.execute("INSERT INTO kv VALUES (99, 1)").unwrap();
        s.commit().unwrap();
        crash_points += 1;
        k += 1;
        assert!(k < 4096, "sweep did not terminate");
    }
    assert!(
        crash_points >= 3,
        "sweep must cover several crash points, got {crash_points}"
    );
}

/// Reference for the proptest: one plain engine applying the same
/// transactions serially.
fn serial_answers(txns: &[Vec<(i64, i64)>]) -> Vec<Vec<Vec<Value>>> {
    let mut db = Engine::new();
    db.execute("CREATE TABLE kv (k int, v int)").unwrap();
    db.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
        .unwrap();
    let mut out = vec![db.execute(QUERY).unwrap().rows];
    for txn in txns {
        for &(k, v) in txn {
            db.execute(&format!("INSERT INTO kv VALUES ({k}, {v})"))
                .unwrap();
        }
        out.push(db.execute(QUERY).unwrap().rows);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: random transaction batches interleaved with reader
    /// snapshots. Every reader's answer must be byte-identical (content
    /// and order) to the serial engine at its snapshot point, and stay
    /// frozen until the reader refreshes — regardless of how many
    /// commits land in between.
    #[test]
    fn snapshot_reads_equal_serial_execution(
        txns in prop::collection::vec(
            prop::collection::vec((100i64..200, 0i64..1000), 1..4),
            1..8,
        ),
        // Which reader (of four) refreshes after each commit.
        refresh_picks in prop::collection::vec(0usize..4, 8),
    ) {
        let serial = serial_answers(&txns);
        let shared = seeded();
        let mut writer = shared.session();
        let mut readers: Vec<_> = (0..4).map(|_| shared.session()).collect();
        // Snapshot point of each reader: index into `serial`.
        let mut at = [0usize; 4];
        for (i, txn) in txns.iter().enumerate() {
            // Every reader answers exactly its snapshot point's serial state.
            for (r, reader) in readers.iter_mut().enumerate() {
                prop_assert_eq!(
                    &reader.execute(QUERY).unwrap().rows,
                    &serial[at[r]],
                    "reader {} diverged from serial state {} before txn {}",
                    r, at[r], i
                );
            }
            writer.begin().unwrap();
            for &(k, v) in txn {
                writer.execute(&format!("INSERT INTO kv VALUES ({k}, {v})")).unwrap();
            }
            writer.commit().unwrap();
            // One reader moves up to the new state; the rest stay put.
            let pick = refresh_picks[i % refresh_picks.len()];
            readers[pick].refresh().unwrap();
            at[pick] = i + 1;
        }
        for (r, reader) in readers.iter_mut().enumerate() {
            prop_assert_eq!(
                &reader.execute(QUERY).unwrap().rows,
                &serial[at[r]],
                "reader {} diverged at the end", r
            );
            reader.refresh().unwrap();
            prop_assert_eq!(
                &reader.execute(QUERY).unwrap().rows,
                serial.last().unwrap(),
                "reader {} refresh missed the final state", r
            );
        }
    }
}
