//! Ordered-index range scans: the planner must turn `<`/`>`/`BETWEEN`
//! predicates over a `CREATE ORDERED INDEX` column into an `IndexRange`
//! probe, and on a large table the probe must do orders of magnitude
//! less work than the sequential scan it replaces.

use rdbms::{Engine, Value};
use std::time::Instant;

const ROWS: i64 = 1_000_000;

fn big_table(ordered_index: bool) -> Engine {
    let mut db = Engine::new();
    db.execute("CREATE TABLE big (id int, payload int)")
        .unwrap();
    if ordered_index {
        db.execute("CREATE ORDERED INDEX big_id ON big (id)")
            .unwrap();
    }
    let mut batch = Vec::with_capacity(50_000);
    for i in 0..ROWS {
        batch.push(vec![Value::Int(i), Value::Int(i * 31 % 997)]);
        if batch.len() == 50_000 {
            db.insert_rows("big", std::mem::take(&mut batch)).unwrap();
        }
    }
    db
}

const RANGE_SQL: &str = "SELECT * FROM big WHERE id BETWEEN 500000 AND 500999";

#[test]
fn between_uses_ordered_index_and_beats_seqscan() {
    let mut indexed = big_table(true);
    let mut plain = big_table(false);

    // Plan shape: BETWEEN desugars to >= and <=, which the planner folds
    // into one IndexRange over the ordered index; without the index the
    // same query is a filtered sequential scan.
    let explain = indexed
        .execute(&format!("EXPLAIN {RANGE_SQL}"))
        .unwrap()
        .rows;
    let plan = format!("{explain:?}");
    assert!(
        plan.contains("IndexRange"),
        "expected IndexRange, got {plan}"
    );
    let explain = plain.execute(&format!("EXPLAIN {RANGE_SQL}")).unwrap().rows;
    let plan = format!("{explain:?}");
    assert!(plan.contains("SeqScan"), "expected SeqScan, got {plan}");

    // Identical answers either way.
    let t = Instant::now();
    let via_index = indexed.execute(RANGE_SQL).unwrap().rows;
    let t_index = t.elapsed();
    let t = Instant::now();
    let via_scan = plain.execute(RANGE_SQL).unwrap().rows;
    let t_scan = t.elapsed();
    assert_eq!(via_index.len(), 1000, "inclusive 1000-row range");
    let mut sorted = via_index.clone();
    sorted.sort();
    let mut scan_sorted = via_scan;
    scan_sorted.sort();
    assert_eq!(sorted, scan_sorted, "index and scan answers differ");

    // The probe touches ~1000 tuples; the scan reads all 10^6. The
    // logical counters are the deterministic half of "beats"; wall time
    // is the observable half (the scan does 1000x the work, so even a
    // noisy CI box shows a gap).
    let idx_stats = indexed.stats().exec;
    let scan_stats = plain.stats().exec;
    assert!(
        idx_stats.tuples_fetched <= 2_000,
        "index probe fetched {} tuples",
        idx_stats.tuples_fetched
    );
    assert!(
        scan_stats.tuples_scanned >= ROWS as u64,
        "seq scan read {} tuples",
        scan_stats.tuples_scanned
    );
    assert!(
        t_index < t_scan,
        "range probe ({t_index:?}) should beat the sequential scan ({t_scan:?})"
    );
}

/// The half-open comparisons use the index too, and bound tightening
/// keeps conjuncts consistent with the residual filter.
#[test]
fn open_ranges_and_conjuncts_use_the_index() {
    let mut db = Engine::new();
    db.execute("CREATE TABLE t (id int, v int)").unwrap();
    db.execute("CREATE ORDERED INDEX t_id ON t (id)").unwrap();
    let rows: Vec<Vec<Value>> = (0..1000)
        .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
        .collect();
    db.insert_rows("t", rows).unwrap();

    for (sql, expect) in [
        ("SELECT * FROM t WHERE id > 990", 9),
        ("SELECT * FROM t WHERE id >= 990 AND id < 995", 5),
        ("SELECT * FROM t WHERE id BETWEEN 10 AND 19 AND v = 0", 1),
    ] {
        let plan = format!("{:?}", db.execute(&format!("EXPLAIN {sql}")).unwrap().rows);
        assert!(plan.contains("IndexRange"), "{sql}: got {plan}");
        assert_eq!(db.execute(sql).unwrap().rows.len(), expect, "{sql}");
    }
}
