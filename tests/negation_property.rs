//! Property tests for stratified negation: evaluated answers must match a
//! reference computation of the stratified model on random graphs.

use km::session::{binary_sym, Session};
use km::LfpStrategy;
use proptest::prelude::*;
use rdbms::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

fn reachable(edges: &[(u8, u8)], start: u8) -> BTreeSet<u8> {
    let mut adj: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        for &next in adj.get(&n).into_iter().flatten() {
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    seen
}

fn node(n: u8) -> String {
    format!("v{n}")
}

fn build_session(edges: &[(u8, u8)], nodes: &BTreeSet<u8>) -> Session {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("edge", &binary_sym()).unwrap();
    s.define_base("node", &[hornlog::types::AttrType::Sym])
        .unwrap();
    s.load_facts(
        "edge",
        edges
            .iter()
            .map(|&(a, b)| vec![Value::from(node(a)), Value::from(node(b))])
            .collect(),
    )
    .unwrap();
    s.load_facts(
        "node",
        nodes.iter().map(|&n| vec![Value::from(node(n))]).collect(),
    )
    .unwrap();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// unreach(a, Y) = nodes NOT reachable from a, per the stratified
    /// model, for both LFP strategies.
    #[test]
    fn unreachable_matches_complement(
        edges in prop::collection::vec((0u8..8, 0u8..8), 1..20),
        start in 0u8..8,
    ) {
        let nodes: BTreeSet<u8> = edges
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .chain([start])
            .collect();
        let reach = reachable(&edges, start);
        let expected: BTreeSet<String> = nodes
            .iter()
            .filter(|n| !reach.contains(n))
            .map(|&n| node(n))
            .collect();
        for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
            let mut s = build_session(&edges, &nodes);
            s.config.strategy = strategy;
            s.load_rules(
                "reach(X, Y) :- edge(X, Y).\n\
                 reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
                 unreach(X, Y) :- node(X), node(Y), not reach(X, Y).\n",
            )
            .unwrap();
            let (_, result) =
                s.query(&format!("?- unreach({}, W).", node(start))).unwrap();
            let got: BTreeSet<String> = result
                .rows
                .iter()
                .map(|r| r[0].as_str().unwrap().to_string())
                .collect();
            prop_assert_eq!(&got, &expected, "strategy {:?}", strategy);
        }
    }

    /// sink(X) = nodes with no outgoing edge; double negation recovers the
    /// complement (nonsink) exactly.
    #[test]
    fn double_negation_is_complement(
        edges in prop::collection::vec((0u8..8, 0u8..8), 0..16),
    ) {
        let nodes: BTreeSet<u8> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        prop_assume!(!nodes.is_empty());
        let with_out: BTreeSet<u8> = edges.iter().map(|&(a, _)| a).collect();
        let mut s = build_session(&edges, &nodes);
        s.load_rules(
            "hasout(X) :- edge(X, Y).\n\
             sink(X) :- node(X), not hasout(X).\n\
             nonsink(X) :- node(X), not sink(X).\n",
        )
        .unwrap();
        let (_, sinks) = s.query("?- sink(W).").unwrap();
        let (_, nonsinks) = s.query("?- nonsink(W).").unwrap();
        let got_sinks: BTreeSet<String> = sinks
            .rows.iter().map(|r| r[0].as_str().unwrap().to_string()).collect();
        let got_nonsinks: BTreeSet<String> = nonsinks
            .rows.iter().map(|r| r[0].as_str().unwrap().to_string()).collect();
        let expected_sinks: BTreeSet<String> =
            nodes.iter().filter(|n| !with_out.contains(n)).map(|&n| node(n)).collect();
        let expected_nonsinks: BTreeSet<String> =
            with_out.iter().map(|&n| node(n)).collect();
        prop_assert_eq!(got_sinks, expected_sinks);
        prop_assert_eq!(got_nonsinks, expected_nonsinks);
    }
}
