//! Tests of the supplementary magic-sets variant: rewrite structure,
//! agreement with plain magic sets and unoptimized evaluation, and the
//! shared-prefix saving it exists for.

use hornlog::parser::{parse_program, parse_query};
use km::magic::{magic_rewrite, supplementary_magic_rewrite};
use km::session::{binary_sym, Session, SessionConfig};
use rdbms::Value;
use std::collections::BTreeSet;
use workload::graphs;

fn derived(names: &[&str]) -> BTreeSet<String> {
    names.iter().map(|s| s.to_string()).collect()
}

#[test]
fn same_generation_gets_supplementaries() {
    // sg's recursive rule has a 3-atom body: the classic case where the
    // supplementary chain shares the up-join between the magic rule and
    // the modified rule.
    let p = parse_program(
        "sg(X, Y) :- flat(X, Y).\n\
         sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
    )
    .unwrap();
    let q = parse_query("?- sg(john, W).").unwrap();
    let rw = supplementary_magic_rewrite(&p, &q, &derived(&["sg"]));
    let texts: Vec<String> = rw.program.clauses.iter().map(|c| c.to_string()).collect();
    // sup_0 from the magic guard, sup chain through the prefix.
    assert!(
        texts
            .iter()
            .any(|t| t.starts_with("sup1_0_sg__bf(X) :- m_sg__bf(X).")),
        "sup_0 present: {texts:#?}"
    );
    assert!(
        texts
            .iter()
            .any(|t| t.contains("sup1_1_sg__bf") && t.contains("up(X, U)")),
        "sup_1 joins the prefix: {texts:#?}"
    );
    // The magic rule reads the supplementary, not the raw prefix. (sup_1
    // carries X too — the head still needs it downstream.)
    assert!(
        texts.contains(&"m_sg__bf(U) :- sup1_1_sg__bf(X, U).".to_string()),
        "magic rule over sup: {texts:#?}"
    );
    // The modified rule reads the last supplementary plus the final atom.
    assert!(
        texts
            .iter()
            .any(|t| t.starts_with("sg__bf(X, Y) :- sup1_2_sg__bf(") && t.contains("down(V, Y)")),
        "modified rule over sup: {texts:#?}"
    );
}

#[test]
fn single_atom_bodies_fall_back_to_plain_magic() {
    let p = parse_program("anc(X, Y) :- parent(X, Y).\nanc(X, Y) :- parent(X, Z), anc(Z, Y).\n")
        .unwrap();
    let q = parse_query("?- anc(adam, W).").unwrap();
    let plain = magic_rewrite(&p, &q, &derived(&["anc"]));
    let sup = supplementary_magic_rewrite(&p, &q, &derived(&["anc"]));
    // The exit rule (1 body atom) must be identical in both rewrites.
    let plain_texts: BTreeSet<String> = plain
        .program
        .clauses
        .iter()
        .map(|c| c.to_string())
        .collect();
    assert!(plain_texts.contains("anc__bf(X, Y) :- m_anc__bf(X), parent(X, Y)."));
    let sup_texts: BTreeSet<String> = sup.program.clauses.iter().map(|c| c.to_string()).collect();
    assert!(sup_texts.contains("anc__bf(X, Y) :- m_anc__bf(X), parent(X, Y)."));
}

fn run_config(
    edges: &[(String, String)],
    rules: &str,
    query: &str,
    optimize: bool,
    supplementary: bool,
) -> Vec<Vec<Value>> {
    let mut s = Session::new(SessionConfig {
        optimize,
        supplementary,
        ..SessionConfig::default()
    })
    .unwrap();
    for rel in ["up", "down", "flat", "edge"] {
        s.define_base(rel, &binary_sym()).unwrap();
    }
    s.load_facts(
        "edge",
        edges
            .iter()
            .map(|(a, b)| vec![Value::from(a.as_str()), Value::from(b.as_str())])
            .collect(),
    )
    .unwrap();
    // up = reversed edges, down = edges, flat = self-pairs at roots.
    s.load_facts(
        "up",
        edges
            .iter()
            .map(|(a, b)| vec![Value::from(b.as_str()), Value::from(a.as_str())])
            .collect(),
    )
    .unwrap();
    s.load_facts(
        "down",
        edges
            .iter()
            .map(|(a, b)| vec![Value::from(a.as_str()), Value::from(b.as_str())])
            .collect(),
    )
    .unwrap();
    s.load_facts("flat", vec![vec![Value::from("n1"), Value::from("n1")]])
        .unwrap();
    s.load_rules(rules).unwrap();
    let (_, r) = s.query(query).unwrap();
    r.rows
}

#[test]
fn three_optimizer_configs_agree_on_same_generation() {
    let edges = graphs::full_binary_tree(6);
    let rules = workload::same_generation();
    let query = "?- sg(n32, W).";
    let plain = run_config(&edges, rules, query, false, false);
    let magic = run_config(&edges, rules, query, true, false);
    let supp = run_config(&edges, rules, query, true, true);
    assert_eq!(plain, magic);
    assert_eq!(plain, supp);
    // n32 is on level 6: 32 same-generation members.
    assert_eq!(plain.len(), 32);
}

#[test]
fn three_optimizer_configs_agree_on_ancestor() {
    let edges = graphs::full_binary_tree(6);
    let rules = workload::ancestor_program("edge");
    for query in ["?- anc(n2, W).", "?- anc(V, n33).", "?- anc(n1, n63)."] {
        let plain = run_config(&edges, &rules, query, false, false);
        let magic = run_config(&edges, &rules, query, true, false);
        let supp = run_config(&edges, &rules, query, true, true);
        assert_eq!(plain, magic, "{query}");
        assert_eq!(plain, supp, "{query}");
    }
}

#[test]
fn supplementary_reduces_tuple_work_on_wide_bodies() {
    // A rule with a long prefix reused by two recursive occurrences: the
    // supplementary variant evaluates the prefix once.
    let edges = graphs::full_binary_tree(7);
    let rules = "sg(X, Y) :- flat(X, Y).\n\
                 sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n";
    let query = "?- sg(n64, W).";
    let mut magic_s = Session::new(SessionConfig {
        optimize: true,
        ..SessionConfig::default()
    })
    .unwrap();
    let mut supp_s = Session::new(SessionConfig {
        optimize: true,
        supplementary: true,
        ..SessionConfig::default()
    })
    .unwrap();
    for s in [&mut magic_s, &mut supp_s] {
        for rel in ["up", "down", "flat"] {
            s.define_base(rel, &binary_sym()).unwrap();
        }
        s.load_facts(
            "up",
            edges
                .iter()
                .map(|(a, b)| vec![Value::from(b.as_str()), Value::from(a.as_str())])
                .collect(),
        )
        .unwrap();
        s.load_facts(
            "down",
            edges
                .iter()
                .map(|(a, b)| vec![Value::from(a.as_str()), Value::from(b.as_str())])
                .collect(),
        )
        .unwrap();
        s.load_facts("flat", vec![vec![Value::from("n1"), Value::from("n1")]])
            .unwrap();
        s.load_rules(rules).unwrap();
    }
    let (_, r1) = magic_s.query(query).unwrap();
    let (_, r2) = supp_s.query(query).unwrap();
    assert_eq!(r1.rows, r2.rows);
    // Both are correct; the structural claim is that the supplementary
    // program materializes the prefix once (visible as sup tables).
    let listing = supp_s.explain(query).unwrap().join("\n");
    assert!(
        listing.contains("sup1_1_sg__bf"),
        "sup chain in program:\n{listing}"
    );
}
