# Developer entry points for the dkbms testbed.

.PHONY: all test bench experiments examples doc clippy clean

all: test

test:
	cargo test --workspace

bench:
	cargo bench --workspace

# Regenerate every paper table/figure (EXPERIMENTS.md records the shapes).
experiments:
	cargo run --release -p dkbms-bench --bin experiments

examples:
	cargo run --release --example quickstart
	cargo run --release --example genealogy
	cargo run --release --example bill_of_materials
	cargo run --release --example corporate_policy

doc:
	cargo doc --workspace --no-deps

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

clean:
	cargo clean
